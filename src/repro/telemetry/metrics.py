"""The metrics half of :mod:`repro.telemetry`.

A :class:`MetricsRegistry` holds three instrument kinds under one
hierarchical dot-separated namespace (``core.phase2.collections``,
``executor.shard.retries``, ``crowd.batches.deduped``):

* **counters** — monotonically increasing integer sums;
* **gauges** — last-set floats (``merge`` keeps the max, which is the
  right combinator for the 0/1 flags we gauge, e.g. degraded mode);
* **histograms** — fixed-bucket distributions (bucket-wise integer
  sums plus a running total and value sum).

Every instrument merges associatively and commutatively, so per-shard
registries collected in worker processes can be folded into the parent
in *any* order and still produce identical totals — the same algebra
that makes checkpoint/resume byte-identical for experiment results
extends to the telemetry channel.

The registry state is plain picklable builtins (dicts, lists, ints,
floats), so it rides inside checkpoint journal entries unchanged.
"""

#: Default histogram bucket upper bounds in milliseconds.  Chosen to
#: straddle the paper's 100 ms perceivable-delay threshold with roughly
#: logarithmic spacing; the implicit final bucket is +inf.
DEFAULT_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
)

#: Characters that may not appear in label keys or values — they are
#: the delimiters of the encoded form.
_LABEL_FORBIDDEN = frozenset('{},="')


def labeled(name, **labels):
    """Encode *labels* into a metric name, canonically.

    The registry itself is label-unaware: a labeled series is just a
    metric whose name carries its labels in a fixed textual form,
    ``name{key=value,...}`` with keys sorted — so the same label set
    always produces the same registry key, and the Prometheus renderer
    (:mod:`repro.obs.prometheus`) can split them back out.  Keys and
    values must avoid the delimiter characters ``{ } , = "``.

    >>> labeled("serve.http.requests", status="2xx", route="/healthz")
    'serve.http.requests{route=/healthz,status=2xx}'
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        for text in (key, value):
            bad = _LABEL_FORBIDDEN.intersection(text)
            if bad:
                raise ValueError(
                    f"label {key}={value!r} contains reserved "
                    f"character(s) {sorted(bad)}"
                )
        parts.append(f"{key}={value}")
    return name + "{" + ",".join(parts) + "}"


class MetricsRegistry:
    """Counters, gauges, and fixed-bucket histograms under one namespace.

    All mutators are cheap dict updates; nothing here allocates per
    call beyond the first touch of each metric name.  ``merge`` /
    ``merge_state`` are associative and commutative so shard-collected
    registries survive any absorption order (including checkpoint
    resume, where restored shards are folded in before fresh ones).
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        # name -> [bounds tuple, per-bucket counts list (+inf last),
        #          total observation count, value sum]
        self._histograms = {}

    # ---------------------------------------------------------- mutators

    def count(self, name, n=1):
        """Increment counter *name* by integer *n* (default 1)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge_set(self, name, value):
        """Set gauge *name* to float *value* (last write wins locally)."""
        self._gauges[name] = float(value)

    def observe(self, name, value, buckets=DEFAULT_BUCKETS_MS):
        """Record one observation into histogram *name*.

        *buckets* fixes the upper bounds on first use; later calls and
        merges must agree on them (fixed buckets are what make the
        merge bucket-wise addition).
        """
        hist = self._histograms.get(name)
        if hist is None:
            bounds = tuple(float(b) for b in buckets)
            hist = [bounds, [0] * (len(bounds) + 1), 0, 0.0]
            self._histograms[name] = hist
        bounds, counts, _, _ = hist
        slot = len(bounds)
        for position, bound in enumerate(bounds):
            if value <= bound:
                slot = position
                break
        counts[slot] += 1
        hist[2] += 1
        hist[3] += float(value)

    # ----------------------------------------------------------- readers

    def counter_value(self, name):
        """Current value of counter *name* (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name, default=0.0):
        """Current value of gauge *name* (*default* when never set)."""
        return self._gauges.get(name, default)

    def histogram_summary(self, name):
        """``(total_count, value_sum)`` of histogram *name* (0, 0.0)."""
        hist = self._histograms.get(name)
        if hist is None:
            return 0, 0.0
        return hist[2], hist[3]

    def histogram_buckets(self, name):
        """``(bounds, counts)`` of histogram *name*, or None.

        *bounds* are the finite upper bounds; *counts* has one extra
        trailing slot for the implicit +inf bucket.  Both come back as
        fresh tuples, so callers cannot corrupt the registry.
        """
        hist = self._histograms.get(name)
        if hist is None:
            return None
        return tuple(hist[0]), tuple(hist[1])

    def counter_names(self):
        """Sorted counter names currently present."""
        return sorted(self._counters)

    def empty(self):
        """True when nothing has been recorded."""
        return not (self._counters or self._gauges or self._histograms)

    # ------------------------------------------------------------- merge

    def state(self):
        """Picklable snapshot: plain dicts/lists of builtins only."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: [list(hist[0]), list(hist[1]), hist[2], hist[3]]
                for name, hist in self._histograms.items()
            },
        }

    def merge_state(self, state):
        """Fold a :meth:`state` snapshot into this registry.

        Counters and histogram buckets add; gauges keep the maximum
        (our gauges are 0/1 "did it ever happen" flags, for which max
        is the associative/commutative combinator).  Histogram bucket
        bounds must match — mismatched bounds would make the merge
        silently lossy, so they raise instead.
        """
        for name, value in state.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in state.get("gauges", {}).items():
            current = self._gauges.get(name)
            self._gauges[name] = (
                value if current is None else max(current, value)
            )
        for name, other in state.get("histograms", {}).items():
            bounds = tuple(float(b) for b in other[0])
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = [
                    bounds, list(other[1]), other[2], other[3]
                ]
                continue
            if hist[0] != bounds:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ: "
                    f"{hist[0]} vs {bounds}"
                )
            for position, count in enumerate(other[1]):
                hist[1][position] += count
            hist[2] += other[2]
            hist[3] += other[3]
        return self

    def merge(self, other):
        """Fold another registry into this one (see :meth:`merge_state`)."""
        return self.merge_state(other.state())

    # ------------------------------------------------------------ render

    def render_lines(self):
        """Deterministic plain-text rendering, one metric per line.

        Lines are sorted by name within each section, so two
        registries with equal contents render byte-identically no
        matter the insertion order.
        """
        lines = []
        if self._counters:
            lines.append("# counters")
            for name in sorted(self._counters):
                lines.append(f"{name} {self._counters[name]}")
        if self._gauges:
            lines.append("# gauges")
            for name in sorted(self._gauges):
                lines.append(f"{name} {self._gauges[name]:g}")
        if self._histograms:
            lines.append("# histograms")
            for name in sorted(self._histograms):
                bounds, counts, total, value_sum = self._histograms[name]
                buckets = " ".join(
                    f"le{bound:g}={count}"
                    for bound, count in zip(bounds, counts)
                )
                lines.append(
                    f"{name} count={total} sum={value_sum:g} "
                    f"{buckets} inf={counts[-1]}"
                )
        return lines
