"""In-lab testing (the paper's §4.6 alternative approach).

Instead of shipping Hang Doctor to users, a developer can run the app
on a test bed of phones where inputs come from automated tools
(Android's Monkey / MonkeyRunner).  Advantages: bugs are caught before
release, and overhead doesn't matter (phones on external power) — so
the cheap first phase can be skipped and every soft hang traced.

The catch, and the paper's reason to still run in the wild: a lab
"often cannot completely recreate the real environment of apps",
so content-dependent bugs (the 1.3 s HtmlCleaner hang needs a *heavy*
email) may never manifest on synthetic inputs.  The app model encodes
this as :attr:`~repro.apps.api.ApiSpec.lab_manifest_scale`, and
:func:`~repro.testbed.lab.lab_vs_wild` measures the coverage gap.
"""

from repro.testbed.lab import LabReport, TestBedRunner, lab_vs_wild
from repro.testbed.monkey import MonkeyInputGenerator

__all__ = [
    "LabReport",
    "MonkeyInputGenerator",
    "TestBedRunner",
    "lab_vs_wild",
]
