"""Test-bed runner and the lab-vs-wild coverage experiment.

On a test bed, overhead is a non-issue (external power, no users), so
the paper notes "the second phase of Hang Doctor may be sufficient":
trace *every* soft hang and let the Trace Analyzer discard UI work.
:class:`TestBedRunner` implements exactly that — a timeout detector
whose UI-rooted detections are filtered out by trace analysis.

:func:`lab_vs_wild` quantifies the paper's caveat: content-dependent
bugs that manifest in the wild may never manifest on the lab's
synthetic inputs, so in-lab testing complements but cannot replace
in-the-wild detection.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.metrics import detected_bug_sites
from repro.apps.sessions import SessionGenerator
from repro.core.hang_doctor import HangDoctor
from repro.detectors.runner import run_detector
from repro.detectors.timeout import TimeoutDetector
from repro.sim.engine import ExecutionEngine
from repro.testbed.monkey import MonkeyInputGenerator


class TestBedRunner:
    """Phase-2-only detection over monkey-driven lab sessions."""

    __test__ = False  # not a pytest collection target

    def __init__(self, device, seed=0, timeout_ms=100.0):
        self.device = device
        self.seed = seed
        self.timeout_ms = timeout_ms
        self.monkey = MonkeyInputGenerator(seed=seed)

    def run(self, app, event_count=200):
        """Drive *app* with monkey inputs on a lab engine.

        Returns the set of bug call sites whose hangs were traced and
        attributed to a non-UI root cause.
        """
        engine = ExecutionEngine(self.device, seed=self.seed,
                                 environment="lab")
        detector = TimeoutDetector(app, timeout_ms=self.timeout_ms)
        sequence = self.monkey.action_sequence(app, event_count)
        executions = engine.run_session(
            app, sequence, gap_ms=self.monkey.throttle_ms
        )
        run = run_detector(detector, executions)
        # Phase-2 analysis: keep only detections whose root cause is
        # not UI work (the Trace Analyzer's verdict).
        bug_detections = [
            d for d in run.detections if not d.root_is_ui
        ]
        return detected_bug_sites(app, bug_detections)


@dataclass
class LabReport:
    """Lab-vs-wild bug coverage for a set of apps."""

    #: app name -> (lab-found sites, wild-found sites, all bug sites)
    per_app: Dict[str, tuple] = field(default_factory=dict)

    @property
    def lab_found(self):
        """Bug sites the test bed found across all apps."""
        return sum(len(lab) for lab, _, _ in self.per_app.values())

    @property
    def wild_found(self):
        """Bug sites the in-the-wild run found across all apps."""
        return sum(len(wild) for _, wild, _ in self.per_app.values())

    @property
    def total_bugs(self):
        """Ground-truth bug sites across all apps."""
        return sum(len(bugs) for _, _, bugs in self.per_app.values())

    def missed_in_lab(self):
        """Sites the wild run found but the lab never manifested."""
        missed = []
        for app_name, (lab, wild, _) in self.per_app.items():
            for site in sorted(wild - lab):
                missed.append((app_name, site))
        return missed

    def render(self):
        """Human-readable coverage table."""
        lines = [
            "Test bed vs in-the-wild bug coverage",
            f"{'app':16s}{'lab':>6}{'wild':>6}{'bugs':>6}",
        ]
        for app_name, (lab, wild, bugs) in self.per_app.items():
            lines.append(
                f"{app_name:16s}{len(lab):>6}{len(wild):>6}{len(bugs):>6}"
            )
        lines.append(
            f"{'TOTAL':16s}{self.lab_found:>6}{self.wild_found:>6}"
            f"{self.total_bugs:>6}"
        )
        return "\n".join(lines)


def lab_vs_wild(apps, device, seed=0, lab_events=200, wild_users=3,
                wild_actions_per_user=60):
    """Compare in-lab (monkey, synthetic content) against in-the-wild
    (real users, real content) bug coverage for *apps*."""
    report = LabReport()
    runner = TestBedRunner(device, seed=seed)
    generator = SessionGenerator(seed=seed)
    for app in apps:
        lab_sites = runner.run(app, event_count=lab_events)

        wild_engine = ExecutionEngine(device, seed=seed,
                                      environment="wild")
        doctor = HangDoctor(app, device, seed=seed)
        wild_detections = []
        for session in generator.fleet_sessions(
                app, wild_users, wild_actions_per_user):
            executions = wild_engine.run_session(
                app, session.action_names, gap_ms=1000.0
            )
            wild_detections.extend(
                run_detector(doctor, executions,
                             device_id=session.user_id).detections
            )
        wild_sites = detected_bug_sites(app, wild_detections)
        all_sites = {op.site_id for op in app.hang_bug_operations()}
        report.per_app[app.name] = (lab_sites, wild_sites, all_sites)
    return report
