"""Monkey-style automated input generation.

Android's Monkey fires pseudo-random input events at an app; unlike a
real user it has no preferences, so every action is (roughly) equally
likely, and it never supplies meaningful content.  The generator only
decides *which* actions run; the content gap is modelled by running
the executions on a ``lab``-environment engine.
"""

from repro.base.rng import stream


class MonkeyInputGenerator:
    """Uniform pseudo-random action sequences (adb monkey style)."""

    def __init__(self, seed=0, throttle_ms=300.0):
        if throttle_ms < 0:
            raise ValueError("throttle_ms must be >= 0")
        self.seed = seed
        #: Pause between injected events (monkey's --throttle flag).
        self.throttle_ms = throttle_ms

    def action_sequence(self, app, event_count):
        """*event_count* uniformly drawn action names."""
        rng = stream(self.seed, "monkey", app.name)
        names = [action.name for action in app.actions]
        indices = rng.integers(0, len(names), size=event_count)
        return [names[i] for i in indices]

    def coverage(self, app, event_count):
        """Fraction of the app's actions a run of this length hits."""
        sequence = self.action_sequence(app, event_count)
        return len(set(sequence)) / len(app.actions)
