"""Terminal plots for the paper's figures.

Pure-text rendering (no plotting dependency): sorted-sample strip
charts for Figure 4's distributions, dual time-series charts for
Figure 5's traces, and horizontal bar charts for Figure 8's
comparisons.  Every renderer returns a string, so outputs drop
straight into benchmark archives and CI logs.
"""

from typing import Sequence

#: Unicode eighth-blocks for smooth bars.
_BLOCKS = " ▏▎▍▌▋▊▉█"

#: Bar glyph for simple charts.
_BAR = "█"


def _scale(value, lo, hi, width):
    if hi <= lo:
        return 0
    return max(0, min(width, int(round((value - lo) / (hi - lo) * width))))


def hbar_chart(items, width=40, title=None, fmt="{:.2f}"):
    """Horizontal bar chart over (label, value) pairs.

    >>> print(hbar_chart([("a", 2.0), ("b", 1.0)], width=4))
    a  ████  2.00
    b  ██    1.00
    """
    items = list(items)
    if not items:
        return title or ""
    label_width = max(len(str(label)) for label, _ in items)
    hi = max(value for _, value in items)
    lines = [] if title is None else [title]
    for label, value in items:
        bar = _BAR * _scale(value, 0.0, hi, width)
        lines.append(
            f"{str(label):<{label_width}}  {bar:<{width}}  "
            f"{fmt.format(value)}"
        )
    return "\n".join(lines)


def strip_chart(values: Sequence[float], threshold=None, width=50,
                label=""):
    """One-line distribution strip: each sample becomes a column mark.

    Samples are placed along the x-axis by value; a ``threshold`` is
    drawn as ``|``.  Mirrors Figure 4's sorted-sample panels in one
    line per class.
    """
    values = list(values)
    if not values:
        return f"{label} (no samples)"
    lo = min(values + ([threshold] if threshold is not None else []))
    hi = max(values + ([threshold] if threshold is not None else []))
    cells = [" "] * (width + 1)
    for value in values:
        cells[_scale(value, lo, hi, width)] = "•"
    if threshold is not None:
        position = _scale(threshold, lo, hi, width)
        cells[position] = "|" if cells[position] == " " else "┿"
    return f"{label}{''.join(cells)}  [{lo:.3g} .. {hi:.3g}]"


def distribution_panel(event, bug_values, ui_values, threshold,
                       width=50):
    """Figure 4-style panel: bug and UI strips around one threshold."""
    lines = [f"{event} (threshold {threshold:.3g})"]
    lines.append(strip_chart(bug_values, threshold, width, "  HB "))
    lines.append(strip_chart(ui_values, threshold, width, "  UI "))
    return "\n".join(lines)


def series_chart(series, width=60, height=8, label=""):
    """Down-sampled block chart of one (time, value) series."""
    if not series:
        return f"{label} (no data)"
    values = [value for _, value in series]
    hi = max(values) or 1.0
    # Resample to the chart width.
    step = max(1, len(values) // width)
    sampled = [
        max(values[i:i + step]) for i in range(0, len(values), step)
    ]
    rows = []
    for level in range(height, 0, -1):
        cutoff = hi * (level - 0.5) / height
        row = "".join("█" if v >= cutoff else " " for v in sampled)
        rows.append(f"  {row}")
    rows.append("  " + "-" * len(sampled))
    return "\n".join([f"{label} (max {hi:.3g})"] + rows)


def dual_series_chart(main_series, render_series, width=60, height=6):
    """Figure 5-style stacked main/render charts on one time base."""
    return "\n".join([
        series_chart(main_series, width, height, "main thread"),
        series_chart(render_series, width, height, "render thread"),
    ])
