"""Shared fixtures.

Session-scoped fixtures cache the expensive artifacts (training
samples, fleet sessions) so the suite stays fast while individual
tests remain isolated through fresh engines/detectors where mutation
matters.
"""

import pytest

from repro.apps.catalog import get_app
from repro.harness.training import (
    collect_training_samples,
    training_bug_cases,
    training_ui_cases,
)
from repro.sim.device import LG_V10
from repro.sim.engine import ExecutionEngine


@pytest.fixture(scope="session")
def device():
    return LG_V10


@pytest.fixture()
def engine(device):
    """A fresh engine per test (engines carry an execution counter)."""
    return ExecutionEngine(device, seed=1234)


@pytest.fixture(scope="session")
def k9():
    return get_app("K9-mail")


@pytest.fixture(scope="session")
def andstatus():
    return get_app("AndStatus")


@pytest.fixture(scope="session")
def camera_app():
    return get_app("A Better Camera")


@pytest.fixture(scope="session")
def training_samples_diff(device):
    """Labelled training samples (diff mode) shared across tests."""
    engine = ExecutionEngine(device, seed=77)
    cases = training_bug_cases() + training_ui_cases()
    return collect_training_samples(engine, cases, runs_per_case=5)
