"""Shared test helpers."""


def run_until(engine, app, action_name, predicate, attempts=60):
    """Run an action until *predicate(execution)* holds."""
    action = app.action(action_name)
    for _ in range(attempts):
        execution = engine.run_action(app, action)
        if predicate(execution):
            return execution
    raise AssertionError(
        f"no execution of {app.name}/{action_name} satisfied the predicate "
        f"in {attempts} attempts"
    )
