"""Tests for repro.analysis.correlation."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    CounterSample,
    correlate,
    pearson,
    ranked_events,
)


def sample(value, label, event="x"):
    return CounterSample(values={event: value}, is_hang_bug=label)


def test_pearson_perfect_positive():
    assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)


def test_pearson_perfect_negative():
    assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)


def test_pearson_zero_variance_returns_zero():
    assert pearson([1, 1, 1], [0, 1, 0]) == 0.0


def test_pearson_length_mismatch():
    with pytest.raises(ValueError):
        pearson([1, 2], [1, 2, 3])


def test_pearson_needs_two_points():
    with pytest.raises(ValueError):
        pearson([1], [1])


def test_pearson_matches_numpy():
    rng = np.random.default_rng(0)
    x = rng.normal(size=100)
    y = 0.5 * x + rng.normal(size=100)
    assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


def test_correlate_separating_event():
    samples = [sample(10.0, True) for _ in range(5)]
    samples += [sample(-10.0, False) for _ in range(5)]
    coefficients = correlate(samples, events=("x",))
    assert coefficients["x"] == pytest.approx(1.0)


def test_correlate_uninformative_event():
    samples = [sample(1.0, True), sample(1.0, False),
               sample(1.0, True), sample(1.0, False)]
    coefficients = correlate(samples, events=("x",))
    assert coefficients["x"] == 0.0


def test_correlate_needs_samples():
    with pytest.raises(ValueError):
        correlate([sample(1.0, True)], events=("x",))


def test_ranked_events_descending():
    coefficients = {"a": 0.2, "b": 0.9, "c": 0.5}
    assert [e for e, _ in ranked_events(coefficients)] == ["b", "c", "a"]


def test_ranked_events_top():
    coefficients = {"a": 0.2, "b": 0.9, "c": 0.5}
    assert len(ranked_events(coefficients, top=2)) == 2


def test_training_samples_correlations_shape(training_samples_diff):
    """On the real training set, kernel scheduling events dominate the
    top of the ranking and microarchitectural events trail (paper's
    Table 3 structure)."""
    coefficients = correlate(training_samples_diff)
    top5 = {event for event, _ in ranked_events(coefficients, top=5)}
    kernel_schedulers = {
        "context-switches", "task-clock", "cpu-clock", "page-faults",
        "minor-faults", "cpu-migrations",
    }
    assert len(top5 & kernel_schedulers) >= 4
    ranked = ranked_events(coefficients)
    position = {event: index for index, (event, _) in enumerate(ranked)}
    assert position["instructions"] > position["task-clock"]
    assert position["cache-misses"] > position["context-switches"]
