"""Tests for repro.analysis.metrics (ground-truth scoring)."""

import pytest

from repro.analysis.metrics import (
    ConfusionCounts,
    detected_bug_sites,
    detection_matches_bug,
    false_positive_actions,
    match_detection,
    traced_confusion,
)
from repro.detectors.base import ActionOutcome, Detection
from repro.detectors.timeout import TimeoutDetector
from repro.detectors.runner import run_detector
from tests.helpers import run_until


def make_detection(k9, root, action_name="open_email"):
    return Detection(
        detector="T", app_name=k9.name, action_name=action_name,
        time_ms=0.0, response_time_ms=500.0, root=root,
    )


def test_confusion_precision_recall():
    counts = ConfusionCounts(tp=8, fp=2, fn=2)
    assert counts.precision == pytest.approx(0.8)
    assert counts.recall == pytest.approx(0.8)


def test_confusion_empty_is_zero():
    counts = ConfusionCounts()
    assert counts.precision == 0.0
    assert counts.recall == 0.0


def test_match_detection_by_leaf_frame(k9):
    bug = k9.hang_bug_operations()[0]
    detection = make_detection(k9, bug.api.leaf_frame())
    assert match_detection(k9, detection) is not None
    assert detection_matches_bug(k9, detection)


def test_match_detection_by_caller_frame(k9):
    bug = k9.hang_bug_operations()[0]
    detection = make_detection(k9, bug.caller_frame(k9.package))
    assert detection_matches_bug(k9, detection)


def test_match_detection_by_entry_frame():
    from repro.apps.catalog import get_app

    sage = get_app("Sage Math")
    nested = next(
        op for op in sage.hang_bug_operations()
        if op.api.entry_name is not None
    )
    detection = Detection(
        detector="T", app_name=sage.name, action_name="cache_cell",
        time_ms=0.0, response_time_ms=400.0, root=nested.api.entry_frame(),
    )
    assert detection_matches_bug(sage, detection)


def test_unmatched_root_is_not_a_bug(k9):
    from repro.base.frames import Frame

    stranger = Frame("x.Y", "z", "Y.java", 1)
    detection = make_detection(k9, stranger)
    assert match_detection(k9, detection) is None
    assert not detection_matches_bug(k9, detection)


def test_none_root_is_not_a_bug(k9):
    detection = make_detection(k9, None)
    assert not detection_matches_bug(k9, detection)


def test_ui_root_is_not_a_bug(k9):
    ui_op = next(
        op for op in k9.action("folders").operations() if op.api.is_ui
    )
    detection = make_detection(k9, ui_op.api.leaf_frame(), "folders")
    assert match_detection(k9, detection) is not None
    assert not detection_matches_bug(k9, detection)


def test_detected_bug_sites_dedup(k9):
    bug = k9.hang_bug_operations()[0]
    detections = [make_detection(k9, bug.api.leaf_frame())] * 3
    assert len(detected_bug_sites(k9, detections)) == 1


def test_false_positive_actions(k9):
    ui_op = next(
        op for op in k9.action("folders").operations() if op.api.is_ui
    )
    detections = [make_detection(k9, ui_op.api.leaf_frame(), "folders")]
    assert false_positive_actions(k9, detections) == {"folders"}


def test_traced_confusion_alignment_check():
    with pytest.raises(ValueError):
        traced_confusion([1, 2], [ActionOutcome()])


def test_traced_confusion_on_real_run(engine, k9):
    executions = engine.run_session(
        k9, ["open_email", "folders"] * 8, gap_ms=500.0
    )
    run = run_detector(TimeoutDetector(k9), executions)
    counts = run.confusion()
    bug_hangs = sum(
        1 for ex in executions for event in ex.hang_events()
        if event.dominant_op() is not None
        and event.dominant_op().op.is_hang_bug
    )
    assert counts.tp == bug_hangs
    assert counts.fn == 0
    assert counts.fp > 0  # UI hangs traced


def test_traced_confusion_episode_not_overlapping_bug_is_fp(engine, k9):
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    outcome = ActionOutcome()
    # An episode entirely outside any hang window.
    outcome.trace_episodes.append(
        (execution.end_ms + 1000.0, execution.end_ms + 1100.0)
    )
    counts = traced_confusion([execution], [outcome])
    assert counts.fp == 1
    assert counts.tp == 0
    assert counts.fn >= 1
