"""Tests for repro.analysis.overhead (the cost model)."""

import pytest

from repro.analysis.overhead import OverheadModel, app_baseline
from repro.detectors.base import MonitoringCost


def test_zero_cost_zero_overhead():
    model = OverheadModel()
    result = model.overhead(MonitoringCost(), 1000.0, 1000.0)
    assert result.cpu_percent == 0.0
    assert result.memory_percent == 0.0


def test_overhead_requires_positive_baseline():
    model = OverheadModel()
    with pytest.raises(ValueError):
        model.overhead(MonitoringCost(), 0.0, 100.0)


def test_monitor_cpu_composition():
    model = OverheadModel()
    cost = MonitoringCost(rt_events=10, trace_samples=100)
    expected = 10 * model.rt_event_cpu_ms + 100 * model.trace_sample_cpu_ms
    assert model.monitor_cpu_ms(cost) == pytest.approx(expected)


def test_util_sample_costs_more_than_counter_read():
    """The paper's rationale for performance events over /proc
    utilizations: counter access is far cheaper."""
    model = OverheadModel()
    assert model.util_sample_cpu_ms > 5 * model.counter_read_cpu_ms


def test_trace_sample_is_the_expensive_unit():
    model = OverheadModel()
    assert model.trace_sample_cpu_ms > 50 * model.rt_event_cpu_ms


def test_average_percent():
    model = OverheadModel()
    cost = MonitoringCost(trace_samples=100)
    result = model.overhead(cost, 1000.0, 1000.0)
    assert result.average_percent == pytest.approx(
        (result.cpu_percent + result.memory_percent) / 2
    )


def test_app_baseline_positive(engine, k9):
    executions = engine.run_session(k9, ["open_email"], gap_ms=0.0)
    cpu_ms, mem_kb = app_baseline(executions)
    assert cpu_ms > 0
    assert mem_kb > 0


def test_app_baseline_includes_all_threads(engine, k9):
    executions = engine.run_session(k9, ["folders"], gap_ms=0.0)
    cpu_ms, _ = app_baseline(executions)
    main_only = executions[0].timeline.cpu_ms("main")
    assert cpu_ms > main_only


def test_overhead_scales_linearly_with_cost():
    model = OverheadModel()
    small = model.overhead(MonitoringCost(trace_samples=10), 1e4, 1e4)
    large = model.overhead(MonitoringCost(trace_samples=100), 1e4, 1e4)
    assert large.cpu_percent == pytest.approx(10 * small.cpu_percent)
