"""Tests for repro.analysis.roc (threshold sweeps)."""

import pytest

from repro.analysis.correlation import CounterSample
from repro.analysis.roc import auc_ranking, roc_curve


def sample(value, label, event="e"):
    return CounterSample(values={event: value}, is_hang_bug=label)


def separable():
    return [sample(10.0 + i, True) for i in range(5)] + [
        sample(-10.0 - i, False) for i in range(5)
    ]


def test_perfect_separation_auc_one():
    curve = roc_curve(separable(), "e")
    assert curve.auc == pytest.approx(1.0)


def test_uninformative_auc_half():
    samples = [sample(float(i), i % 2 == 0) for i in range(40)]
    curve = roc_curve(samples, "e")
    assert curve.auc == pytest.approx(0.5, abs=0.12)


def test_points_bounded_and_monotone_ends():
    curve = roc_curve(separable(), "e")
    assert curve.points[0] == (0.0, 0.0)
    assert curve.points[-1] == (1.0, 1.0)
    for fpr, tpr in curve.points:
        assert 0.0 <= fpr <= 1.0
        assert 0.0 <= tpr <= 1.0


def test_tpr_at_fpr():
    curve = roc_curve(separable(), "e")
    assert curve.tpr_at_fpr(0.0) == pytest.approx(1.0)


def test_needs_both_classes():
    with pytest.raises(ValueError):
        roc_curve([sample(1.0, True)], "e")


def test_operating_point():
    samples = separable()
    curve = roc_curve(samples, "e")
    pairs = [(s.values["e"], s.is_hang_bug) for s in samples]
    fpr, tpr = curve.operating_point(pairs, threshold=0.0)
    assert (fpr, tpr) == (0.0, 1.0)


def test_auc_ranking_orders_events():
    samples = []
    for i in range(10):
        label = i % 2 == 0
        samples.append(CounterSample(
            values={"good": 10.0 if label else -10.0,
                    "noise": float(i % 3)},
            is_hang_bug=label,
        ))
    ranking = auc_ranking(samples, ("noise", "good"))
    assert ranking[0][0] == "good"


def test_filter_events_have_high_auc(training_samples_diff):
    """The shipped filter events all separate bug hangs from UI hangs
    far better than chance on the real training set."""
    for event in ("context-switches", "task-clock", "page-faults"):
        curve = roc_curve(training_samples_diff, event)
        assert curve.auc > 0.75, event


def test_kernel_events_beat_uarch_events_on_auc(training_samples_diff):
    ranking = dict(auc_ranking(
        training_samples_diff,
        ("task-clock", "context-switches", "instructions", "cache-misses"),
    ))
    assert ranking["task-clock"] > ranking["instructions"]
    assert ranking["context-switches"] > ranking["cache-misses"]
