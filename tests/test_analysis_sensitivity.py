"""Tests for repro.analysis.sensitivity."""

import pytest

from repro.analysis.correlation import CounterSample
from repro.analysis.sensitivity import (
    sensitivity_analysis,
    subsample,
)


def make_samples(n=40):
    samples = []
    for index in range(n):
        label = index % 2 == 0
        samples.append(
            CounterSample(
                values={"x": 10.0 if label else -10.0, "y": float(index)},
                is_hang_bug=label,
            )
        )
    return samples


def test_subsample_size():
    samples = make_samples(40)
    subset = subsample(samples, 0.5, seed=1)
    assert len(subset) == 20


def test_subsample_fraction_validation():
    with pytest.raises(ValueError):
        subsample(make_samples(), 0.0)


def test_subsample_deterministic():
    samples = make_samples(40)
    first = subsample(samples, 0.75, seed=2)
    second = subsample(samples, 0.75, seed=2)
    assert first == second


def test_subsample_keeps_both_labels():
    samples = make_samples(40)
    for seed in range(10):
        subset = subsample(samples, 0.25, seed=seed)
        labels = {s.is_hang_bug for s in subset}
        assert labels == {True, False}


def test_sensitivity_rankings_per_fraction():
    samples = make_samples(60)
    result = sensitivity_analysis(
        samples, fractions=(1.0, 0.5), events=("x", "y")
    )
    assert set(result.rankings) == {1.0, 0.5}
    assert result.top_events(1.0, k=1) == ["x"]
    assert result.top_events(0.5, k=1) == ["x"]


def test_stable_top_k_on_separable_data():
    samples = make_samples(60)
    result = sensitivity_analysis(
        samples, fractions=(1.0, 0.75, 0.5), events=("x", "y")
    )
    assert result.stable_top_k(k=1)


def test_real_training_set_top5_family_is_stable(training_samples_diff):
    """Paper Table 4: the most correlated events keep their positions
    across 75 % and 50 % training subsets (allowing the cpu-clock /
    task-clock and page/minor-fault twins to swap within the family)."""
    result = sensitivity_analysis(training_samples_diff, seed=3)
    tops = {
        fraction: set(result.top_events(fraction, k=5))
        for fraction in result.rankings
    }
    kernel_schedulers = {
        "context-switches", "task-clock", "cpu-clock", "page-faults",
        "minor-faults", "cpu-migrations",
    }
    for fraction, top in tops.items():
        assert len(top & kernel_schedulers) >= 4, (fraction, top)
