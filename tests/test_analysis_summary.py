"""Tests for repro.analysis.summary."""

import pytest

from repro.analysis.summary import (
    DetectorSummary,
    render_summaries,
    summarize_run,
    summarize_runs,
)
from repro.core.hang_doctor import HangDoctor
from repro.detectors.runner import run_detectors
from repro.detectors.timeout import TimeoutDetector


def test_precision_recall_f1():
    summary = DetectorSummary(name="X", tp=8, fp=2, fn=2,
                              overhead_percent=1.0)
    assert summary.precision == pytest.approx(0.8)
    assert summary.recall == pytest.approx(0.8)
    assert summary.f1 == pytest.approx(0.8)


def test_degenerate_summary():
    summary = DetectorSummary(name="X", tp=0, fp=0, fn=0,
                              overhead_percent=0.0)
    assert summary.precision == 0.0
    assert summary.recall == 0.0
    assert summary.f1 == 0.0


def test_summarize_real_runs(device, engine, k9):
    executions = engine.run_session(
        k9, ["open_email", "folders"] * 10, gap_ms=500.0
    )
    runs = run_detectors(
        [TimeoutDetector(k9), HangDoctor(k9, device, seed=1)], executions
    )
    summaries = summarize_runs(runs)
    by_name = {s.name: s for s in summaries}
    assert by_name["HD"].precision > by_name["TI"].precision
    assert by_name["TI"].recall == 1.0
    assert by_name["HD"].overhead_percent < by_name["TI"].overhead_percent


def test_summaries_sorted_by_f1(device, engine, k9):
    executions = engine.run_session(
        k9, ["open_email", "folders"] * 8, gap_ms=500.0
    )
    runs = run_detectors(
        [TimeoutDetector(k9), HangDoctor(k9, device, seed=1)], executions
    )
    summaries = summarize_runs(runs)
    f1s = [s.f1 for s in summaries]
    assert f1s == sorted(f1s, reverse=True)


def test_render_summaries():
    text = render_summaries([
        DetectorSummary(name="HD", tp=10, fp=1, fn=2,
                        overhead_percent=0.8),
    ])
    assert "HD" in text
    assert "precision" in text
