"""Tests for repro.analysis.thresholds (filter fitting)."""

import pytest

from repro.analysis.correlation import CounterSample
from repro.analysis.thresholds import FilterFit, fit_filter, fit_threshold


def sample(values, label):
    return CounterSample(values=values, is_hang_bug=label)


def separable_samples():
    bugs = [sample({"a": 10.0 + i, "b": 0.0}, True) for i in range(5)]
    uis = [sample({"a": -10.0 - i, "b": 0.0}, False) for i in range(5)]
    return bugs + uis


def test_fit_threshold_separates_cleanly():
    threshold, cost = fit_threshold(separable_samples(), "a")
    assert -10.0 < threshold < 10.0
    assert cost == 0


def test_fit_threshold_no_samples():
    with pytest.raises(ValueError):
        fit_threshold([], "a")


def test_fires_strictly_greater():
    fit = FilterFit(thresholds={"a": 5.0})
    assert not fit.fires({"a": 5.0})
    assert fit.fires({"a": 5.1})


def test_fires_or_semantics():
    fit = FilterFit(thresholds={"a": 5.0, "b": 100.0})
    assert fit.fires({"a": 0.0, "b": 200.0})
    assert not fit.fires({"a": 0.0, "b": 0.0})


def test_confusion_counts():
    fit = FilterFit(thresholds={"a": 0.0})
    samples = [
        sample({"a": 1.0}, True),   # tp
        sample({"a": -1.0}, True),  # fn
        sample({"a": 1.0}, False),  # fp
        sample({"a": -1.0}, False)  # tn
    ]
    assert fit.confusion(samples) == (1, 1, 1, 1)
    assert fit.accuracy(samples) == 0.5
    assert fit.false_positive_prune_rate(samples) == 0.5


def test_fit_filter_single_event_when_separable():
    fit = fit_filter(separable_samples(), ["a", "b"])
    assert list(fit.thresholds) == ["a"]


def test_fit_filter_adds_events_until_coverage():
    # Bug 1 visible only on "a"; bug 2 sits BELOW the UI values on "a"
    # (covering it there would cost three false positives) but is
    # clearly visible on "b".
    samples = [
        sample({"a": 10.0, "b": -5.0}, True),
        sample({"a": -20.0, "b": 10.0}, True),
        sample({"a": -10.0, "b": -10.0}, False),
        sample({"a": -12.0, "b": -12.0}, False),
        sample({"a": -14.0, "b": -14.0}, False),
    ]
    fit = fit_filter(samples, ["a", "b"])
    assert set(fit.thresholds) == {"a", "b"}
    tp, fp, fn, tn = fit.confusion(samples)
    assert fn == 0


def test_fit_filter_skips_near_duplicates():
    # "a2" mirrors "a" exactly; "b" catches the remaining bug.
    samples = [
        sample({"a": 10.0, "a2": 20.0, "b": -5.0}, True),
        sample({"a": -20.0, "a2": -40.0, "b": 10.0}, True),
        sample({"a": -10.0, "a2": -20.0, "b": -10.0}, False),
        sample({"a": -12.0, "a2": -24.0, "b": -12.0}, False),
        sample({"a": -14.0, "a2": -28.0, "b": -14.0}, False),
    ]
    fit = fit_filter(samples, ["a", "a2", "b"])
    assert "a2" not in fit.thresholds
    assert set(fit.thresholds) == {"a", "b"}


def test_fit_filter_respects_max_events():
    samples = [
        sample({"a": 10.0, "b": -5.0}, True),
        sample({"a": -5.0, "b": 10.0}, True),
        sample({"a": -10.0, "b": -10.0}, False),
    ]
    fit = fit_filter(samples, ["a", "b"], max_events=1)
    assert list(fit.thresholds) == ["a"]


def test_fit_on_training_selects_kernel_scheduling_events(
        training_samples_diff):
    """On the real training set the procedure selects a small OR-filter
    over kernel scheduling events (the paper's structure: at most a
    handful of events, led by the task-clock/cpu-clock family, all from
    the OS-scheduling group, never microarchitectural ones)."""
    from repro.analysis.correlation import correlate, ranked_events

    ranked = [e for e, _ in ranked_events(correlate(training_samples_diff))]
    fit = fit_filter(training_samples_diff, ranked)
    chosen = set(fit.thresholds)
    kernel_schedulers = {
        "context-switches", "task-clock", "cpu-clock", "page-faults",
        "minor-faults", "cpu-migrations", "major-faults",
    }
    assert chosen <= kernel_schedulers
    assert 2 <= len(chosen) <= 4
    assert chosen & {"task-clock", "cpu-clock"}


def test_fitted_filter_has_full_training_recall(training_samples_diff):
    from repro.analysis.correlation import correlate, ranked_events

    ranked = [e for e, _ in ranked_events(correlate(training_samples_diff))]
    fit = fit_filter(training_samples_diff, ranked)
    tp, fp, fn, tn = fit.confusion(training_samples_diff)
    assert fn == 0
    assert fit.false_positive_prune_rate(training_samples_diff) > 0.5
