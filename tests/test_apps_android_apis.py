"""Invariants of the Android API registry."""

import pytest

from repro.apps import android_apis as apis
from repro.apps.api import ApiKind, is_ui_class
from repro.core.blocking_db import BlockingApiDatabase


def test_training_ui_apis_count():
    assert len(apis.TRAINING_UI_APIS) == 11


def test_training_ui_apis_are_ui():
    for api in apis.TRAINING_UI_APIS:
        assert api.kind is ApiKind.UI
        assert is_ui_class(api.clazz), api.qualified_name


def test_known_blocking_apis_flagged():
    for api in apis.KNOWN_BLOCKING_APIS:
        assert api.known_blocking, api.qualified_name
        assert api.kind is ApiKind.BLOCKING


def test_unknown_apis_fall_in_two_groups():
    """Either a genuinely unknown API, or a known API hidden behind a
    library facade (the paper's nested cases)."""
    for api in apis.UNKNOWN_BLOCKING_APIS:
        if api.known_blocking:
            assert api.entry_name is not None, api.qualified_name
        else:
            assert api.entry_name is None or api.library


def test_initial_blocking_names_cover_known_apis():
    names = apis.initial_blocking_names()
    for api in apis.KNOWN_BLOCKING_APIS:
        assert api.qualified_name in names


def test_initial_blocking_names_exclude_unknown_apis():
    names = apis.initial_blocking_names()
    for api in apis.UNKNOWN_BLOCKING_APIS:
        if not api.known_blocking:
            assert api.qualified_name not in names


def test_database_initial_matches_registry():
    db = BlockingApiDatabase.initial()
    assert db.names() == apis.initial_blocking_names()


def test_light_apis_never_hang():
    for api in apis.LIGHT_APIS:
        assert not api.can_hang


def test_heavy_loop_builder():
    loop = apis.heavy_loop("crunch", "com.app.Worker", mean_ms=300.0)
    assert loop.kind is ApiKind.COMPUTE
    assert loop.can_hang
    assert not loop.known_blocking


def test_paper_example_apis_exist():
    """The APIs the paper names are all modelled."""
    names = {
        api.qualified_name
        for api in apis.KNOWN_BLOCKING_APIS + apis.UNKNOWN_BLOCKING_APIS
    }
    for expected in (
        "android.hardware.Camera.open",
        "android.hardware.Camera.setParameters",
        "android.media.MediaPlayer.prepare",
        "android.graphics.BitmapFactory.decodeFile",
        "android.bluetooth.BluetoothServerSocket.accept",
        "org.htmlcleaner.HtmlCleaner.clean",
        "com.google.gson.Gson.toJson",
    ):
        assert expected in names


def test_network_api_carries_bytes():
    assert apis.HTTP_EXECUTE.network_bytes > 0
    assert apis.HTTP_EXECUTE.known_blocking


def test_no_duplicate_qualified_names_within_known():
    names = [api.qualified_name for api in apis.KNOWN_BLOCKING_APIS]
    assert len(names) == len(set(names))


def test_ui_apis_render_shares_span_the_spectrum():
    """Some UI work is render-heavy (draw), some main-heavy
    (measure/layout) — the spread behind the filter's hard cases."""
    shares = [api.render_share for api in apis.TRAINING_UI_APIS]
    assert min(shares) < 0.2
    assert max(shares) > 0.6
