"""Tests for repro.apps.api (API specifications)."""

import pytest

from repro.apps.api import (
    ApiKind,
    ApiSpec,
    blocking_api,
    compute_op,
    is_ui_class,
    light_api,
    ui_api,
)
from repro.base.rng import stream


def test_ui_class_prefixes():
    assert is_ui_class("android.widget.TextView")
    assert is_ui_class("android.view.LayoutInflater")
    assert not is_ui_class("android.hardware.Camera")
    assert not is_ui_class("org.htmlcleaner.HtmlCleaner")


def test_bitmap_factory_is_not_ui():
    # android.graphics.drawable is UI; android.graphics.BitmapFactory
    # is not (the AndStatus bug lives there).
    assert not is_ui_class("android.graphics.BitmapFactory")
    assert is_ui_class("android.graphics.drawable.Drawable")


def test_qualified_name():
    api = blocking_api("open", "android.hardware.Camera")
    assert api.qualified_name == "android.hardware.Camera.open"


def test_ui_api_is_never_a_hang_bug():
    api = ui_api("inflate", "android.view.LayoutInflater", mean_ms=500.0)
    assert api.is_ui
    assert not api.can_hang


def test_blocking_api_can_hang_when_long_enough():
    assert blocking_api("read", "java.io.FileInputStream",
                        mean_ms=300.0).can_hang


def test_short_blocking_api_cannot_hang():
    assert not blocking_api("setParameters", "android.hardware.Camera",
                            mean_ms=85.0).can_hang


def test_compute_op_can_hang():
    assert compute_op("heavyLoop", "com.app.Worker", mean_ms=250.0).can_hang


def test_light_api_cannot_hang():
    assert not light_api("d", "android.util.Log").can_hang


def test_invalid_mean_rejected():
    with pytest.raises(ValueError):
        blocking_api("x", "a.B", mean_ms=0.0)


def test_invalid_manifest_prob_rejected():
    with pytest.raises(ValueError):
        blocking_api("x", "a.B", mean_ms=100.0, manifest_prob=1.5)


def test_invalid_cpu_share_rejected():
    with pytest.raises(ValueError):
        blocking_api("x", "a.B", mean_ms=100.0, cpu_share=0.0)


def test_entry_fields_must_be_paired():
    with pytest.raises(ValueError):
        ApiSpec(name="x", clazz="a.B", kind=ApiKind.BLOCKING, mean_ms=100.0,
                entry_name="facade")


def test_call_site_defaults_to_leaf():
    api = blocking_api("query", "android.database.sqlite.SQLiteDatabase",
                       mean_ms=200.0)
    assert api.call_site_name == "query"
    assert api.call_site_class == "android.database.sqlite.SQLiteDatabase"


def test_call_site_uses_facade_when_wrapped():
    api = blocking_api(
        "insertWithOnConflict", "android.database.sqlite.SQLiteDatabase",
        mean_ms=300.0, entry_name="get",
        entry_clazz="nl.qbusict.cupboard.Cupboard",
    )
    assert api.call_site_name == "get"
    assert api.call_site_class == "nl.qbusict.cupboard.Cupboard"


def test_api_frames_without_facade():
    api = blocking_api("read", "java.io.FileInputStream", mean_ms=200.0)
    frames = api.api_frames()
    assert len(frames) == 1
    assert frames[0].method == "read"


def test_api_frames_with_facade():
    api = blocking_api(
        "insertWithOnConflict", "android.database.sqlite.SQLiteDatabase",
        mean_ms=300.0, entry_name="get",
        entry_clazz="nl.qbusict.cupboard.Cupboard",
    )
    frames = api.api_frames()
    assert [f.method for f in frames] == ["get", "insertWithOnConflict"]


def test_uarch_profile_stable_per_api():
    api = blocking_api("read", "java.io.FileInputStream", mean_ms=200.0)
    assert api.uarch_profile() == api.uarch_profile()


def test_uarch_profile_differs_across_apis():
    first = blocking_api("read", "java.io.FileInputStream", mean_ms=200.0)
    second = blocking_api("write", "java.io.FileOutputStream", mean_ms=200.0)
    assert first.uarch_profile() != second.uarch_profile()


def test_sample_duration_always_manifests_at_prob_one():
    api = blocking_api("read", "java.io.FileInputStream", mean_ms=200.0)
    rng = stream("api-test", 1)
    durations = [api.sample_duration_ms(rng) for _ in range(50)]
    assert all(manifested for _, manifested in durations)


def test_sample_duration_respects_manifest_prob():
    api = blocking_api("clean", "org.htmlcleaner.HtmlCleaner",
                       mean_ms=1000.0, manifest_prob=0.3, fast_ms=10.0)
    rng = stream("api-test", 2)
    outcomes = [api.sample_duration_ms(rng) for _ in range(300)]
    manifested = [d for d, m in outcomes if m]
    fast = [d for d, m in outcomes if not m]
    assert 0.15 < len(manifested) / len(outcomes) < 0.45
    assert min(manifested) > max(fast)


def test_sample_duration_mean_close_to_spec():
    import numpy as np

    api = blocking_api("read", "java.io.FileInputStream", mean_ms=400.0)
    rng = stream("api-test", 3)
    durations = [api.sample_duration_ms(rng)[0] for _ in range(500)]
    assert np.mean(durations) == pytest.approx(400.0, rel=0.1)


def test_leaf_frame_line_is_stable():
    api = blocking_api("read", "java.io.FileInputStream", mean_ms=200.0)
    assert api.leaf_frame() == api.leaf_frame()
