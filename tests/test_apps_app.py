"""Tests for repro.apps.app (operations, actions, apps)."""

import pytest

from repro.apps import android_apis as apis
from repro.apps.app import (
    ActionSpec,
    AppSpec,
    InputEventSpec,
    Operation,
    simple_action,
    simple_event,
)
from repro.apps.catalog_helpers import action, op


def make_app():
    buggy = action(
        "load", "onClick",
        op(apis.DB_QUERY, "loadItems", "Loader.java"),
        op(apis.SET_TEXT, "showItems", "Loader.java"),
    )
    clean = action("scroll", "onScroll", op(apis.SMOOTH_SCROLL, "scrollList"))
    return AppSpec(name="Demo", package="com.demo", category="Tools",
                   downloads=10, commit="abc1234", actions=(buggy, clean))


def test_operation_is_hang_bug():
    bug = op(apis.DB_QUERY, "loadItems")
    assert bug.is_hang_bug
    ui = op(apis.SET_TEXT, "showItems")
    assert not ui.is_hang_bug


def test_worker_operation_is_not_a_bug():
    from dataclasses import replace

    bug = op(apis.DB_QUERY, "loadItems")
    moved = replace(bug, on_worker=True)
    assert not moved.is_hang_bug


def test_site_id_distinguishes_call_sites():
    first = op(apis.DB_QUERY, "loadItems", "Loader.java")
    second = op(apis.DB_QUERY, "refreshItems", "Loader.java")
    assert first.site_id != second.site_id


def test_stack_frames_order():
    app = make_app()
    load = app.action("load")
    bug = load.operations()[0]
    frames = bug.stack_frames("com.demo", load.handler_frame("com.demo"))
    assert frames[0].method == "onClick"
    assert frames[1].method == "loadItems"
    assert frames[-1].method == "query"


def test_empty_event_rejected():
    with pytest.raises(ValueError):
        InputEventSpec(name="empty", operations=())


def test_empty_action_rejected():
    with pytest.raises(ValueError):
        ActionSpec(name="empty", handler="onClick", events=())


def test_duplicate_action_names_rejected():
    a = simple_action("same", "onClick", op(apis.SET_TEXT, "x"))
    with pytest.raises(ValueError):
        AppSpec(name="Bad", package="b", category="Tools", downloads=1,
                commit="c", actions=(a, a))


def test_action_lookup():
    app = make_app()
    assert app.action("load").name == "load"
    with pytest.raises(KeyError):
        app.action("missing")


def test_hang_bug_operations_deduplicated():
    app = make_app()
    bugs = app.hang_bug_operations()
    assert len(bugs) == 1
    assert bugs[0].api.name == "query"


def test_has_hang_bugs():
    assert make_app().has_hang_bugs()


def test_fixed_moves_all_bugs():
    fixed = make_app().fixed()
    assert not fixed.has_hang_bugs()
    moved = [o for o in fixed.action("load").operations() if o.on_worker]
    assert len(moved) == 1


def test_fixed_never_moves_ui_operations():
    fixed = make_app().fixed()
    for app_action in fixed.actions:
        for operation in app_action.operations():
            if operation.api.is_ui:
                assert not operation.on_worker


def test_fixed_with_site_filter():
    app = make_app()
    other_site = "nonexistent"
    unchanged = app.fixed(site_ids={other_site})
    assert unchanged.has_hang_bugs()


def test_operation_by_site():
    app = make_app()
    bug = app.hang_bug_operations()[0]
    assert app.operation_by_site(bug.site_id) == bug
    with pytest.raises(KeyError):
        app.operation_by_site("missing")


def test_simple_event_and_action_builders():
    operation = op(apis.SET_TEXT, "x")
    event = simple_event("e", operation)
    assert event.operations == (operation,)
    act = simple_action("a", "onClick", operation)
    assert len(act.events) == 1


def test_handler_frame_names_activity():
    act = simple_action("open_post", "onItemClick", op(apis.SET_TEXT, "x"))
    frame = act.handler_frame("com.demo")
    assert "OpenPostActivity" in frame.clazz
    assert frame.method == "onItemClick"
