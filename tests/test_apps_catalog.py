"""Tests for repro.apps.catalog — the paper's Table 5 inventory."""

import pytest

from repro.apps.catalog import NAMED_APPS, TABLE5_APPS, get_app
from repro.apps.motivation import MOTIVATION_APPS
from repro.detectors.offline import OfflineScanner

#: Table 5's BD (bugs detected) and MO (missed offline) per app.
PAPER_TABLE5 = {
    "AndStatus": (3, 2),
    "DashClock": (1, 0),
    "CycleStreets": (4, 3),
    "K9-mail": (2, 2),
    "Omni-Notes": (3, 3),
    "OwnTracks": (1, 0),
    "QKSMS": (3, 3),
    "StickerCamera": (3, 0),
    "AntennaPod": (3, 2),
    "Merchant": (1, 1),
    "UOITDC Booking": (2, 2),
    "Sage Math": (3, 2),
    "RadioDroid": (2, 1),
    "Git@OSC": (1, 1),
    "Lens-Launcher": (1, 0),
    "SkyTube": (1, 1),
}


def test_sixteen_table5_apps():
    assert len(TABLE5_APPS) == 16
    assert {app.name for app in TABLE5_APPS} == set(PAPER_TABLE5)


@pytest.mark.parametrize("app_name", sorted(PAPER_TABLE5))
def test_per_app_bug_count_matches_table5(app_name):
    expected_bd, _ = PAPER_TABLE5[app_name]
    app = get_app(app_name)
    assert len(app.hang_bug_operations()) == expected_bd


@pytest.mark.parametrize("app_name", sorted(PAPER_TABLE5))
def test_per_app_missed_offline_matches_table5(app_name):
    _, expected_mo = PAPER_TABLE5[app_name]
    scanner = OfflineScanner()
    app = get_app(app_name)
    assert len(scanner.missed_bugs(app)) == expected_mo


def test_total_bugs_34_and_missed_23():
    total = sum(len(app.hang_bug_operations()) for app in TABLE5_APPS)
    scanner = OfflineScanner()
    missed = sum(len(scanner.missed_bugs(app)) for app in TABLE5_APPS)
    assert total == 34
    assert missed == 23
    assert missed / total == pytest.approx(0.68, abs=0.01)


def test_confirmed_share_is_62_percent():
    confirmed = 0
    total = 0
    for app in TABLE5_APPS:
        for report in app.bug_reports:
            total += 1
            confirmed += report.confirmed_by_developer
    assert total == 34
    assert confirmed / total == pytest.approx(0.62, abs=0.02)


def test_bug_reports_cover_every_bug_site():
    for app in TABLE5_APPS:
        report_sites = {report.site_id for report in app.bug_reports}
        bug_sites = {op.site_id for op in app.hang_bug_operations()}
        assert report_sites == bug_sites


def test_every_app_has_a_ui_only_action():
    for app in TABLE5_APPS:
        ui_only = [
            action for action in app.actions
            if not action.hang_bug_operations()
        ]
        assert ui_only, f"{app.name} has no UI-only action"


def test_paper_examples_present():
    k9 = get_app("K9-mail")
    assert any(
        op.api.qualified_name == "org.htmlcleaner.HtmlCleaner.clean"
        for op in k9.hang_bug_operations()
    )
    sage = get_app("Sage Math")
    names = [op.api.qualified_name for op in sage.hang_bug_operations()]
    assert names.count("com.google.gson.Gson.toJson") == 2
    assert (
        "android.database.sqlite.SQLiteDatabase.insertWithOnConflict"
        in names
    )


def test_nested_library_cases():
    """OwnTracks, Sage Math, Lens-Launcher hide known APIs in libraries
    (paper §4.2: 3 of the 11 known-API bugs are library-nested)."""
    nested = 0
    for app_name in ("OwnTracks", "Sage Math", "Lens-Launcher"):
        app = get_app(app_name)
        for op in app.hang_bug_operations():
            if op.api.known_blocking and op.api.entry_name is not None:
                nested += 1
    assert nested == 3


def test_unknown_bug_apis_not_in_initial_database():
    from repro.core.blocking_db import BlockingApiDatabase

    db = BlockingApiDatabase.initial()
    scanner = OfflineScanner()
    for app in TABLE5_APPS:
        for op in scanner.missed_bugs(app):
            assert not db.knows(op.api.qualified_name), (
                f"{op.api.qualified_name} should be unknown"
            )


def test_get_app_unknown_name():
    with pytest.raises(KeyError):
        get_app("Instagram")


def test_named_apps_include_motivation_apps():
    for app in MOTIVATION_APPS:
        assert NAMED_APPS[app.name] is app


def test_issue_ids_match_paper():
    expected = {
        "AndStatus": 303, "DashClock": 874, "CycleStreets": 117,
        "K9-mail": 1007, "Omni-Notes": 253, "OwnTracks": 303,
        "QKSMS": 382, "StickerCamera": 29, "AntennaPod": 1921,
        "Merchant": 17, "UOITDC Booking": 3, "Sage Math": 84,
        "RadioDroid": 29, "Git@OSC": 89, "Lens-Launcher": 15,
        "SkyTube": 88,
    }
    for name, issue in expected.items():
        assert get_app(name).issue_id == issue
