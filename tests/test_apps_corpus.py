"""Tests for repro.apps.corpus and repro.apps.sessions."""

import pytest

from repro.apps.corpus import FLEET_SIZE, build_corpus, generate_clean_app
from repro.apps.sessions import SessionGenerator


def test_fleet_size_is_114():
    assert FLEET_SIZE == 114
    assert len(build_corpus(seed=0)) == 114


def test_corpus_contains_all_catalog_apps():
    from repro.apps.catalog import TABLE5_APPS

    names = {app.name for app in build_corpus(seed=0)}
    for app in TABLE5_APPS:
        assert app.name in names


def test_generated_apps_are_clean():
    for app in build_corpus(seed=0)[16:]:
        assert not app.has_hang_bugs(), app.name


def test_corpus_is_deterministic():
    first = build_corpus(seed=3)
    second = build_corpus(seed=3)
    assert [a.name for a in first] == [a.name for a in second]
    assert first[30].actions == second[30].actions


def test_different_seeds_differ():
    # Index 30 is a *generated* app (past the hand-modelled base).
    first = build_corpus(seed=3)[30]
    second = build_corpus(seed=4)[30]
    assert first.actions != second.actions


def test_corpus_size_validation():
    with pytest.raises(ValueError):
        build_corpus(size=10)


def test_generated_app_shape():
    app = generate_clean_app(0, seed=1)
    assert app.name == "GenApp-000"
    assert 3 <= len(app.actions) <= 6
    for action in app.actions:
        assert action.operations()


def test_session_weights_are_a_distribution(k9):
    weights = SessionGenerator(seed=0).action_weights(k9)
    assert weights.sum() == pytest.approx(1.0)
    assert (weights > 0).all()


def test_user_session_draws_valid_actions(k9):
    session = SessionGenerator(seed=0).user_session(k9, 0,
                                                    actions_per_user=40)
    valid = {action.name for action in k9.actions}
    assert len(session) == 40
    assert set(session.action_names) <= valid


def test_sessions_deterministic(k9):
    first = SessionGenerator(seed=5).user_session(k9, 2)
    second = SessionGenerator(seed=5).user_session(k9, 2)
    assert first.action_names == second.action_names


def test_sessions_differ_across_users(k9):
    generator = SessionGenerator(seed=5)
    assert generator.user_session(k9, 0).action_names != (
        generator.user_session(k9, 1).action_names
    )


def test_fleet_sessions_count(k9):
    sessions = SessionGenerator(seed=0).fleet_sessions(
        k9, users=5, actions_per_user=10
    )
    assert len(sessions) == 5
    assert all(len(session) == 10 for session in sessions)


def test_coverage_session_touches_every_action(k9):
    session = SessionGenerator(seed=0).coverage_session(k9, repeats=2)
    for action in k9.actions:
        assert session.action_names.count(action.name) == 2


def test_wellknown_clean_apps_have_no_bugs():
    from repro.apps.wellknown import WELLKNOWN_CLEAN_APPS

    assert len(WELLKNOWN_CLEAN_APPS) == 5
    for app in WELLKNOWN_CLEAN_APPS:
        assert not app.has_hang_bugs(), app.name


def test_wellknown_apps_offload_blocking_work():
    from repro.apps.wellknown import WELLKNOWN_CLEAN_APPS

    offloaded = 0
    for app in WELLKNOWN_CLEAN_APPS:
        for action in app.actions:
            for op in action.operations():
                if op.on_worker:
                    offloaded += 1
                    assert op.api.can_hang or op.api.kind.value == "blocking"
    assert offloaded >= 5


def test_wellknown_apps_in_corpus():
    from repro.apps.wellknown import WELLKNOWN_CLEAN_APPS

    names = {app.name for app in build_corpus(seed=0)}
    for app in WELLKNOWN_CLEAN_APPS:
        assert app.name in names


def test_wellknown_apps_never_flagged(device):
    """Offline scanners and Hang Doctor both stay silent: the blocking
    calls are already on worker threads."""
    from repro.apps.wellknown import WELLKNOWN_CLEAN_APPS
    from repro.core.hang_doctor import HangDoctor
    from repro.detectors.offline import OfflineScanner
    from repro.detectors.runner import run_detector
    from repro.sim.engine import ExecutionEngine

    scanner = OfflineScanner()
    for app in WELLKNOWN_CLEAN_APPS:
        assert scanner.scan_app(app) == [], app.name
        engine = ExecutionEngine(device, seed=3)
        doctor = HangDoctor(app, device, seed=3)
        names = [a.name for a in app.actions] * 10
        run = run_detector(doctor, engine.run_session(app, names,
                                                      gap_ms=300.0))
        assert run.detections == [], app.name
