"""Tests for repro.apps.motivation — the paper's Table 1 inventory."""

import pytest

from repro.apps.motivation import MOTIVATION_APPS

#: Known-bug counts per Table 2's TP@100ms column.
PAPER_BUGS = {
    "DroidWall": 1,
    "FrostWire": 1,
    "Ushaidi": 2,
    "WebSMS": 1,
    "cgeo": 5,
    "SeaDroid": 1,
    "FBReaderJ": 6,
    "A Better Camera": 2,
}


def get(name):
    return next(app for app in MOTIVATION_APPS if app.name == name)


def test_eight_motivation_apps():
    assert len(MOTIVATION_APPS) == 8
    assert {app.name for app in MOTIVATION_APPS} == set(PAPER_BUGS)


@pytest.mark.parametrize("app_name", sorted(PAPER_BUGS))
def test_bug_counts(app_name):
    assert len(get(app_name).hang_bug_operations()) == PAPER_BUGS[app_name]


def test_total_19_bugs():
    assert sum(
        len(app.hang_bug_operations()) for app in MOTIVATION_APPS
    ) == 19


def test_all_motivation_bugs_are_known_blocking():
    """Table 1 apps have *well-known* bugs (detectable offline)."""
    for app in MOTIVATION_APPS:
        for op in app.hang_bug_operations():
            assert op.api.known_blocking, (
                f"{app.name}: {op.api.qualified_name} should be known"
            )


def test_seadroid_bug_survives_one_second_timeout():
    """Table 2: only SeaDroid's bug is caught at the 1 s timeout."""
    seadroid_bug = get("SeaDroid").hang_bug_operations()[0]
    assert seadroid_bug.api.mean_ms > 1000.0
    for app in MOTIVATION_APPS:
        if app.name == "SeaDroid":
            continue
        for op in app.hang_bug_operations():
            assert op.api.mean_ms < 1000.0


def test_frostwire_bug_survives_500ms_timeout():
    frostwire_bug = get("FrostWire").hang_bug_operations()[0]
    assert frostwire_bug.api.mean_ms > 500.0


def test_figure1_resume_composition():
    """A Better Camera's resume: camera APIs + four UI APIs, with
    Camera.open the dominant ~263 ms operation (Figure 1)."""
    resume = get("A Better Camera").action("resume")
    ops = resume.operations()
    names = [op.api.name for op in ops]
    assert "open" in names
    assert "setParameters" in names
    open_op = next(op for op in ops if op.api.name == "open")
    assert open_op.api.mean_ms == pytest.approx(263.0)
    total = sum(op.api.mean_ms for op in ops)
    assert total == pytest.approx(423.0, rel=0.05)


def test_every_app_has_false_positive_ui_actions():
    for app in MOTIVATION_APPS:
        ui_actions = [
            a for a in app.actions if not a.hang_bug_operations()
        ]
        assert len(ui_actions) >= 3, app.name
