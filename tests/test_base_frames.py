"""Tests for repro.base.frames (frames, traces, occurrence factor)."""

import pytest

from repro.base.frames import Frame, StackTrace, occurrence_factor


def make_frame(method="clean", clazz="org.htmlcleaner.HtmlCleaner"):
    return Frame(clazz=clazz, method=method, file="HtmlCleaner.java", line=25)


def test_qualified_name():
    assert make_frame().qualified_name == "org.htmlcleaner.HtmlCleaner.clean"


def test_str_includes_location():
    assert str(make_frame()) == (
        "org.htmlcleaner.HtmlCleaner.clean(HtmlCleaner.java:25)"
    )


def test_frames_hashable_and_equal():
    assert make_frame() == make_frame()
    assert len({make_frame(), make_frame()}) == 1


def test_leaf_is_last_frame():
    outer = make_frame(method="onItemClick")
    inner = make_frame()
    trace = StackTrace(time_ms=0.0, frames=(outer, inner))
    assert trace.leaf == inner


def test_leaf_of_idle_trace_is_none():
    assert StackTrace(time_ms=0.0, frames=()).leaf is None


def test_contains():
    outer = make_frame(method="caller")
    trace = StackTrace(time_ms=0.0, frames=(outer, make_frame()))
    assert trace.contains(outer)
    assert not trace.contains(make_frame(method="other"))


def test_str_of_idle_trace():
    assert str(StackTrace(time_ms=0.0, frames=())) == "<idle>"


def test_str_lists_leaf_first():
    outer = make_frame(method="outer")
    inner = make_frame(method="inner")
    rendered = str(StackTrace(time_ms=0.0, frames=(outer, inner)))
    assert rendered.index("inner") < rendered.index("outer")


def test_occurrence_factor_counts_any_position():
    frame = make_frame()
    traces = [
        StackTrace(time_ms=0.0, frames=(frame, make_frame(method="x"))),
        StackTrace(time_ms=1.0, frames=(make_frame(method="y"),)),
        StackTrace(time_ms=2.0, frames=(frame,)),
        StackTrace(time_ms=3.0, frames=()),
    ]
    assert occurrence_factor(traces, frame) == pytest.approx(0.5)


def test_occurrence_factor_empty_traces():
    assert occurrence_factor([], make_frame()) == 0.0


def test_occurrence_factor_includes_idle_in_denominator():
    frame = make_frame()
    traces = [
        StackTrace(time_ms=0.0, frames=(frame,)),
        StackTrace(time_ms=1.0, frames=()),
    ]
    assert occurrence_factor(traces, frame) == pytest.approx(0.5)
