"""Tests for repro.base.rng (seeded stream derivation)."""

import numpy as np
import pytest

from repro.base.rng import SeededBackoff, stream, substream_seed


def test_same_keys_same_stream():
    assert stream(1, "a", 2).random() == stream(1, "a", 2).random()


def test_different_seed_different_stream():
    assert stream(1, "a").random() != stream(2, "a").random()


def test_different_keys_different_stream():
    assert stream(1, "a").random() != stream(1, "b").random()


def test_key_order_matters():
    assert stream(1, "a", "b").random() != stream(1, "b", "a").random()


def test_no_key_concatenation_ambiguity():
    # ("ab",) and ("a", "b") must not collide.
    assert stream(1, "ab").random() != stream(1, "a", "b").random()


def test_integer_and_string_keys_both_accepted():
    value = stream(0, "app", 7).random()
    assert 0.0 <= value < 1.0


def test_returns_numpy_generator():
    assert isinstance(stream(0), np.random.Generator)


def test_streams_are_independent_after_draws():
    first = stream(5, "x")
    _ = first.random(100)
    fresh = stream(5, "y")
    again = stream(5, "y")
    assert fresh.random() == again.random()


def test_substream_seed_stable():
    assert substream_seed(3, "k") == substream_seed(3, "k")


def test_substream_seed_distinct():
    assert substream_seed(3, "k") != substream_seed(3, "l")


def test_substream_seed_is_64_bit_int():
    seed = substream_seed(1, "a")
    assert isinstance(seed, int)
    assert 0 <= seed < 2**64


# -------------------------------------------------------- SeededBackoff


def test_backoff_schedule_is_deterministic():
    first = SeededBackoff(7, "client", 3, base_ms=10.0, cap_ms=500.0)
    second = SeededBackoff(7, "client", 3, base_ms=10.0, cap_ms=500.0)
    assert [first.next_ms() for _ in range(8)] == \
        [second.next_ms() for _ in range(8)]


def test_backoff_distinct_keys_distinct_schedules():
    a = SeededBackoff(7, "client", 1)
    b = SeededBackoff(7, "client", 2)
    assert [a.next_ms() for _ in range(4)] != \
        [b.next_ms() for _ in range(4)]


def test_backoff_stays_within_bounds():
    backoff = SeededBackoff(1, "k", base_ms=25.0, cap_ms=2000.0)
    for _ in range(200):
        delay = backoff.next_ms()
        assert 25.0 <= delay <= 2000.0


def test_backoff_envelope_is_decorrelated_jitter():
    """Each delay sits in [base, min(cap, 3 * previous)]."""
    backoff = SeededBackoff(3, "k", base_ms=10.0, cap_ms=1000.0)
    previous = 10.0
    for _ in range(50):
        delay = backoff.next_ms()
        assert 10.0 <= delay <= min(1000.0, 3.0 * previous) + 1e-9
        previous = delay


def test_backoff_reset_rewinds_envelope_not_the_stream():
    """After reset the envelope restarts from base (a fresh burst backs
    off gently) but the attempt counter keeps advancing, so no delay
    value is ever re-drawn."""
    backoff = SeededBackoff(5, "k", base_ms=10.0, cap_ms=1000.0)
    first_burst = [backoff.next_ms() for _ in range(5)]
    backoff.reset()
    after_reset = backoff.next_ms()
    assert after_reset <= 3.0 * 10.0  # envelope restarted
    assert after_reset != first_burst[0]  # stream did not rewind


def test_backoff_validates_parameters():
    with pytest.raises(ValueError, match="base_ms"):
        SeededBackoff(0, base_ms=0.0)
    with pytest.raises(ValueError, match="cap_ms"):
        SeededBackoff(0, base_ms=100.0, cap_ms=50.0)
