"""Tests for repro.base.rng (seeded stream derivation)."""

import numpy as np
import pytest

from repro.base.rng import stream, substream_seed


def test_same_keys_same_stream():
    assert stream(1, "a", 2).random() == stream(1, "a", 2).random()


def test_different_seed_different_stream():
    assert stream(1, "a").random() != stream(2, "a").random()


def test_different_keys_different_stream():
    assert stream(1, "a").random() != stream(1, "b").random()


def test_key_order_matters():
    assert stream(1, "a", "b").random() != stream(1, "b", "a").random()


def test_no_key_concatenation_ambiguity():
    # ("ab",) and ("a", "b") must not collide.
    assert stream(1, "ab").random() != stream(1, "a", "b").random()


def test_integer_and_string_keys_both_accepted():
    value = stream(0, "app", 7).random()
    assert 0.0 <= value < 1.0


def test_returns_numpy_generator():
    assert isinstance(stream(0), np.random.Generator)


def test_streams_are_independent_after_draws():
    first = stream(5, "x")
    _ = first.random(100)
    fresh = stream(5, "y")
    again = stream(5, "y")
    assert fresh.random() == again.random()


def test_substream_seed_stable():
    assert substream_seed(3, "k") == substream_seed(3, "k")


def test_substream_seed_distinct():
    assert substream_seed(3, "k") != substream_seed(3, "l")


def test_substream_seed_is_64_bit_int():
    seed = substream_seed(1, "a")
    assert isinstance(seed, int)
    assert 0 <= seed < 2**64
