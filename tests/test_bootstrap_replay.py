"""Tests for bootstrap intervals and session replay."""

import pytest

from repro.analysis.bootstrap import bootstrap_correlations
from repro.analysis.correlation import CounterSample
from repro.apps.replay import replay, sessions_from_json, sessions_to_json
from repro.apps.sessions import SessionGenerator, UserSession
from repro.core.hang_doctor import HangDoctor
from repro.detectors.timeout import TimeoutDetector


def labelled_samples(n=30, gap=10.0):
    samples = []
    for index in range(n):
        label = index % 2 == 0
        base = gap if label else -gap
        samples.append(CounterSample(
            values={"good": base + (index % 5), "noise": float(index % 7)},
            is_hang_bug=label,
        ))
    return samples


# --- bootstrap ---------------------------------------------------------------


def test_bootstrap_interval_contains_estimate():
    result = bootstrap_correlations(
        labelled_samples(), ("good", "noise"), resamples=100, seed=1
    )
    for event in ("good", "noise"):
        estimate, low, high = result.interval(event)
        assert low - 0.05 <= estimate <= high + 0.05


def test_bootstrap_separates_good_from_noise():
    result = bootstrap_correlations(
        labelled_samples(), ("good", "noise"), resamples=100, seed=1
    )
    assert result.separable("good", "noise")


def test_bootstrap_width_smaller_for_strong_signal():
    result = bootstrap_correlations(
        labelled_samples(), ("good", "noise"), resamples=100, seed=1
    )
    assert result.width("good") < result.width("noise")


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_correlations(labelled_samples(), ("good",), resamples=5)
    with pytest.raises(ValueError):
        bootstrap_correlations(labelled_samples(), ("good",),
                               confidence=1.5)
    single_class = [
        CounterSample(values={"good": 1.0}, is_hang_bug=True)
    ] * 5
    with pytest.raises(ValueError):
        bootstrap_correlations(single_class, ("good",))


def test_bootstrap_deterministic():
    first = bootstrap_correlations(labelled_samples(), ("good",),
                                   resamples=50, seed=9)
    second = bootstrap_correlations(labelled_samples(), ("good",),
                                    resamples=50, seed=9)
    assert first.intervals == second.intervals


def test_bootstrap_render():
    result = bootstrap_correlations(labelled_samples(), ("good", "noise"),
                                    resamples=50)
    text = result.render()
    assert "good" in text
    assert "[" in text


def test_bootstrap_on_training_set_top_vs_uarch(training_samples_diff):
    """Kernel scheduling events are separably above the weakest
    microarchitectural events even under resampling."""
    result = bootstrap_correlations(
        training_samples_diff,
        ("task-clock", "branch-misses"), resamples=60, seed=2,
    )
    assert result.separable("task-clock", "branch-misses")


# --- replay -------------------------------------------------------------------


def test_sessions_roundtrip(k9):
    sessions = SessionGenerator(seed=1).fleet_sessions(k9, 2, 10)
    text = sessions_to_json(sessions, engine_seed=5)
    restored, seed = sessions_from_json(text)
    assert seed == 5
    assert restored == sessions


def test_sessions_schema_check():
    with pytest.raises(ValueError):
        sessions_from_json('{"schema": 9, "engine_seed": 0, "sessions": []}')


def test_replay_identical_executions(device, k9):
    sessions = SessionGenerator(seed=1).fleet_sessions(k9, 1, 25)
    first = replay(k9, sessions, device, TimeoutDetector, engine_seed=3)
    second = replay(k9, sessions, device, TimeoutDetector, engine_seed=3)
    assert [d.root_name for d in first.detections] == [
        d.root_name for d in second.detections
    ]
    assert first.cost.trace_samples == second.cost.trace_samples


def test_replay_compares_detectors_on_same_hangs(device, k9):
    sessions = SessionGenerator(seed=1).fleet_sessions(k9, 2, 25)
    ti = replay(k9, sessions, device, TimeoutDetector, engine_seed=3)
    hd = replay(
        k9, sessions, device,
        lambda app: HangDoctor(app, device, seed=3), engine_seed=3,
    )
    ti_rts = [round(e.response_time_ms, 6) for e in ti.executions]
    hd_rts = [round(e.response_time_ms, 6) for e in hd.executions]
    assert ti_rts == hd_rts  # literally the same soft hangs
    assert hd.confusion().fp < ti.confusion().fp


def test_replay_rejects_wrong_app(device, k9, andstatus):
    sessions = [UserSession(app_name="AndStatus", user_id=0,
                            action_names=("compose",))]
    with pytest.raises(ValueError):
        replay(k9, sessions, device, TimeoutDetector)
