"""The chaos experiment: fault-rate sweeps over the fleet.

The acceptance properties: the rate-0 cells reproduce the fault-free
fleet study bit-for-bit, the sweep is deterministic and shard-
invariant (any ``--workers`` count renders byte-identically), and
nonzero rates degrade quality without ever crashing a deployment.
"""

import pytest

from repro.cli import main
from repro.harness.exp_chaos import ChaosResult, chaos_sweep
from repro.harness.exp_fleet import table5

APPS = ("K9-mail", "AndStatus")
KWARGS = dict(seed=0, apps=APPS, users=1, actions_per_user=10)


@pytest.fixture(scope="module")
def small_sweep(device):
    return chaos_sweep(device, rates=(0.0, 0.3), workers=1, **KWARGS)


def test_rate_zero_matches_fault_free_fleet_study(device, small_sweep):
    """Acceptance: chaos at rate 0 reproduces Table 5's per-app
    bugs-detected numbers bit-for-bit (same seed/users/actions)."""
    fleet = table5(device, seed=0, users=1, actions_per_user=10,
                   corpus_size=22, workers=1)
    fleet_bugs = {row.app_name: row.bugs_detected for row in fleet.rows}
    zero_cells = [cell for cell in small_sweep.cells if cell.rate == 0.0]
    assert len(zero_cells) == len(APPS)
    for cell in zero_cells:
        assert cell.bugs_detected == fleet_bugs[cell.app_name]
        assert cell.counter_read_failures == 0
        assert cell.trace_failures == 0
        assert not cell.degraded
        assert not cell.state_recovered
        assert cell.faults_fired == 0


def test_sweep_parallel_equals_serial(device, small_sweep):
    parallel = chaos_sweep(device, rates=(0.0, 0.3), workers=2, **KWARGS)
    assert parallel.render() == small_sweep.render()
    assert parallel.cells == small_sweep.cells


def test_sweep_repeated_runs_deterministic(device, small_sweep):
    again = chaos_sweep(device, rates=(0.0, 0.3), workers=1, **KWARGS)
    assert again.render() == small_sweep.render()


def test_nonzero_rates_inject_and_never_crash(small_sweep):
    """With faults firing, quality may drop but every cell completes."""
    faulted = small_sweep.row(0.3)
    assert faulted["faults_fired"] > 0
    assert (faulted["counter_read_failures"] + faulted["trace_failures"]) > 0
    base = small_sweep.baseline()
    assert faulted["bugs_detected"] <= base["bugs_detected"]
    assert "no run crashed" in small_sweep.render()


def test_merge_recombines_shards(small_sweep):
    parts = [
        ChaosResult(cells=[cell], rates=(cell.rate,), apps=small_sweep.apps)
        for cell in small_sweep.cells
    ]
    merged = ChaosResult.merge(parts)
    assert merged.cells == small_sweep.cells
    assert merged.rates == small_sweep.rates
    assert merged.render() == small_sweep.render()
    with pytest.raises(ValueError):
        ChaosResult.merge([])


def test_row_rejects_unknown_rate(small_sweep):
    with pytest.raises(KeyError):
        small_sweep.row(0.77)


def test_cli_chaos_quick_is_deterministic(capsys):
    assert main(["chaos", "--quick", "--seed", "0"]) == 0
    first = capsys.readouterr().out
    assert main(["chaos", "--quick", "--seed", "0", "--workers", "2"]) == 0
    second = capsys.readouterr().out
    assert first == second
    assert "Chaos sweep" in first
    assert "degradation at rate" in first


def test_cli_chaos_checkpoint_resume_is_byte_identical(capsys, tmp_path):
    """The README resume quickstart, end to end: a checkpointed run,
    then a resumed one, both render exactly the plain run's bytes."""
    assert main(["chaos", "--quick", "--seed", "0"]) == 0
    plain = capsys.readouterr().out
    ckpt = str(tmp_path / "ckpt")
    assert main(["chaos", "--quick", "--seed", "0",
                 "--checkpoint", ckpt]) == 0
    assert capsys.readouterr().out == plain
    assert main(["chaos", "--quick", "--seed", "0",
                 "--checkpoint", ckpt, "--resume"]) == 0
    assert capsys.readouterr().out == plain


def test_cli_chaos_verbose_reports_execution(capsys, tmp_path):
    ckpt = str(tmp_path / "ckpt")
    assert main(["chaos", "--quick", "--seed", "0",
                 "--checkpoint", ckpt, "--verbose"]) == 0
    assert "execution:" in capsys.readouterr().out
    assert main(["chaos", "--quick", "--seed", "0",
                 "--checkpoint", ckpt, "--resume", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "checkpoint hits: 4" in out
    assert "restored 4/4 shard(s)" in out


def test_cli_resume_without_checkpoint_rejected():
    with pytest.raises(SystemExit, match="--resume requires"):
        main(["chaos", "--quick", "--resume"])
