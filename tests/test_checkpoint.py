"""The shard journal and the resume invariants it guarantees.

The contract under test, straight from the substrate docs: a
checkpointed run renders byte-identically to an uncheckpointed one, an
interrupted-and-resumed run renders byte-identically to an
uninterrupted one (for any worker count, even with executor faults
injected), and a journal never serves stale shards to a
differently-parameterized sweep.
"""

import pickle

import pytest

from repro.checkpoint import JOURNAL_SCHEMA, ShardJournal, checkpointed_map, run_key
from repro.faults import FaultInjector, FaultPlan
from repro.harness.exp_chaos import chaos_sweep
from repro.harness.exp_fleet import table5
from repro.parallel import ExecutionReport
from repro.telemetry import current, export_jsonl, session


def _triple(x):
    return x * 3


def _traced_triple(x):
    """Picklable shard function that records telemetry on its base
    track — the journal key names the track at absorb time."""
    tel = current()
    tel.count("triple.calls")
    tel.record_span("triple.compute", float(x), float(x) + 1.0)
    return x * 3


def _triple_dies_late(x):
    """Fail every shard past the fifth — an interrupt mid-sweep."""
    if x >= 5:
        raise RuntimeError(f"interrupted at {x}")
    return x * 3


# ----------------------------------------------------------- journal


def test_journal_round_trip(tmp_path):
    journal = ShardJournal(tmp_path, run_key("exp", 0)).open()
    assert journal.record("a", {"v": 1})
    assert journal.record("b", [1, 2, 3])
    assert journal.load("a") == (True, {"v": 1})
    assert journal.load("b") == (True, [1, 2, 3])
    assert journal.load("missing") == (False, None)
    assert journal.completed(["a", "missing", "b"]) == ["a", "b"]


def test_journal_resume_keeps_matching_run_key(tmp_path):
    key = run_key("exp", "LG_V10", 7)
    ShardJournal(tmp_path, key).open().record("s", 42)
    resumed = ShardJournal(tmp_path, key).open(resume=True)
    assert resumed.load("s") == (True, 42)


def test_journal_resets_on_run_key_mismatch(tmp_path):
    """Any changed sweep parameter changes the run key, and stale
    shards must never leak into the differently-parameterized run."""
    ShardJournal(tmp_path, run_key("exp", 7)).open().record("s", 42)
    other = ShardJournal(tmp_path, run_key("exp", 8)).open(resume=True)
    assert other.load("s") == (False, None)


def test_journal_without_resume_always_starts_empty(tmp_path):
    key = run_key("exp", 0)
    ShardJournal(tmp_path, key).open().record("s", 42)
    fresh = ShardJournal(tmp_path, key).open(resume=False)
    assert fresh.load("s") == (False, None)


def test_journal_treats_corruption_as_missing(tmp_path):
    journal = ShardJournal(tmp_path, run_key("exp", 0)).open()
    journal.record("s", 42)
    path = journal._entry_path("s")
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert journal.load("s") == (False, None)
    path.write_bytes(pickle.dumps(("someone-else", 99)))
    assert journal.load("s") == (False, None)  # mislabeled entry


def test_run_key_sensitive_to_every_part():
    base = run_key("chaos", "LG_V10", 0, (0.0, 0.2))
    assert base == run_key("chaos", "LG_V10", 0, (0.0, 0.2))
    assert base != run_key("chaos", "LG_V10", 1, (0.0, 0.2))
    assert base != run_key("chaos", "Nexus_5", 0, (0.0, 0.2))
    assert base != run_key("fleet", "LG_V10", 0, (0.0, 0.2))


def test_torn_write_leaves_existing_entry_intact(tmp_path):
    """The crash-atomic contract: a write that dies mid-stream never
    clobbers the previous good entry, and is accounted, not raised."""
    key = run_key("exp", 0)
    ShardJournal(tmp_path, key).open().record("s", "old")
    report = ExecutionReport()
    torn = ShardJournal(
        tmp_path, key,
        faults=FaultInjector(FaultPlan(torn_write_rate=1.0), seed=0),
        report=report,
    ).open(resume=True)
    assert not torn.record("s", "new")
    assert torn.load("s") == (True, "old")
    assert report.torn_writes == 1
    # The simulated crash leaves exactly what a real one would: a
    # truncated temp file beside the still-intact destination.
    litter = list(torn.shards_dir.glob("*.tmp.*"))
    assert len(litter) == 1
    entry = torn._entry_path("s")
    assert litter[0].stat().st_size < entry.stat().st_size


def test_journal_schema_mismatch_resets(tmp_path):
    key = run_key("exp", 0)
    journal = ShardJournal(tmp_path, key).open()
    journal.record("s", 42)
    manifest = journal.manifest_path.read_text()
    journal.manifest_path.write_text(
        manifest.replace(str(JOURNAL_SCHEMA), str(JOURNAL_SCHEMA + 1), 1)
    )
    assert ShardJournal(tmp_path, key).open(resume=True).load("s") == (
        False, None,
    )


# ---------------------------------------------------- checkpointed_map


def test_checkpointed_map_validates_keys():
    with pytest.raises(ValueError, match="one key per item"):
        checkpointed_map(_triple, [1, 2], ["a"], None)
    with pytest.raises(ValueError, match="unique"):
        checkpointed_map(_triple, [1, 2], ["a", "a"], None)


def test_checkpointed_map_without_journal_is_plain_map():
    assert checkpointed_map(_triple, [1, 2, 3], ["a", "b", "c"],
                            None, workers=2) == [3, 6, 9]


@pytest.mark.parametrize("workers", [1, 3])
def test_interrupted_map_resumes_byte_identically(tmp_path, workers):
    """Kill a sweep mid-run (here: shards past the fifth raise), then
    resume — completed shards come back from the journal and the merged
    result equals an uninterrupted run's exactly."""
    items = list(range(9))
    keys = [f"i{x}" for x in items]
    key = run_key("map", workers)
    journal = ShardJournal(tmp_path, key).open()
    with pytest.raises(RuntimeError, match="interrupted"):
        checkpointed_map(_triple_dies_late, items, keys, journal,
                         workers=workers)
    assert journal.completed(keys) == keys[:5]  # partial progress landed
    report = ExecutionReport()
    resumed = ShardJournal(tmp_path, key).open(resume=True)
    result = checkpointed_map(_triple, items, keys, resumed,
                              workers=workers, report=report)
    assert result == [_triple(x) for x in items]
    assert report.checkpoint_hits == 5


def test_checkpointed_map_traces_identically_with_and_without_journal(
    tmp_path,
):
    """Journal keys become telemetry tracks even when no journal is
    attached, so turning checkpointing on or off never changes the
    trace bytes."""
    items, keys = [1, 2, 3], ["k1", "k2", "k3"]
    with session() as unjournaled:
        checkpointed_map(_traced_triple, items, keys, None, workers=2)
    journal = ShardJournal(tmp_path, run_key("t", 0)).open()
    with session() as journaled:
        checkpointed_map(_traced_triple, items, keys, journal, workers=2)
    assert export_jsonl(journaled) == export_jsonl(unjournaled)
    assert {record.track for record in journaled.records} == set(keys)


def test_journal_key_carries_telemetry_marker(tmp_path):
    """A journal written with telemetry active stores carriers, one
    written without stores bare values — the run key keeps the two
    modes from consuming each other's entries."""
    key = run_key("t", 1)
    plain = ShardJournal(tmp_path, key).open()
    with session():
        observed = ShardJournal(tmp_path, key).open()
    assert observed.key != plain.key
    assert observed.key.endswith("+telemetry")


def test_checkpoint_restore_advisory_event_emitted(tmp_path):
    items, keys = [1, 2], ["a", "b"]
    with session():
        journal = ShardJournal(tmp_path, run_key("t", 2)).open()
        checkpointed_map(_traced_triple, items, keys, journal, workers=1)
    with session() as resumed:
        journal = ShardJournal(tmp_path, run_key("t", 2)).open(resume=True)
        checkpointed_map(_traced_triple, items, keys, journal, workers=1)
    names = [name for name, _ in resumed.advisory]
    assert names.count("checkpoint.restore") == 2


# ------------------------------------------------ sweep-level invariants


@pytest.fixture(scope="module")
def chaos_reference(device):
    return chaos_sweep(device, seed=0, rates=(0.0, 0.2),
                       apps=("K9-mail",), users=1, actions_per_user=10)


def test_chaos_checkpointed_equals_uncheckpointed(
    device, chaos_reference, tmp_path
):
    checkpointed = chaos_sweep(device, seed=0, rates=(0.0, 0.2),
                               apps=("K9-mail",), users=1,
                               actions_per_user=10, workers=2,
                               checkpoint=tmp_path)
    assert checkpointed.render() == chaos_reference.render()
    resumed = chaos_sweep(device, seed=0, rates=(0.0, 0.2),
                          apps=("K9-mail",), users=1, actions_per_user=10,
                          workers=2, checkpoint=tmp_path, resume=True)
    assert resumed.render() == chaos_reference.render()
    assert resumed.execution.checkpoint_hits == 2
    assert resumed.execution.shards == 0  # nothing re-ran


def test_chaos_resume_requires_checkpoint(device):
    with pytest.raises(ValueError, match="resume requires"):
        chaos_sweep(device, seed=0, rates=(0.0,), apps=("K9-mail",),
                    users=1, actions_per_user=10, resume=True)


@pytest.mark.parametrize("workers", [2, 4])
def test_chaos_byte_identical_under_injected_executor_faults(
    device, chaos_reference, tmp_path, workers
):
    """The acceptance invariant end to end: worker kills, stalls, and
    torn checkpoint writes injected into the supervisor change the
    execution report, never the rendered result — at any worker
    count."""
    plan = FaultPlan(worker_kill_rate=0.5, shard_stall_rate=0.5,
                     shard_stall_seconds=0.2, torn_write_rate=1.0)
    report = ExecutionReport()
    faulted = chaos_sweep(
        device, seed=0, rates=(0.0, 0.2), apps=("K9-mail",), users=1,
        actions_per_user=10, workers=workers,
        checkpoint=tmp_path / f"w{workers}", report=report,
        executor_faults=FaultInjector(plan, seed=3, scope=("executor",)),
    )
    assert faulted.render() == chaos_reference.render()
    assert report.torn_writes == 2  # every checkpoint write died
    assert report.degraded  # the faults really fired


def test_table5_checkpoint_resume_byte_identical(device, tmp_path):
    reference = table5(device, seed=0, users=1, actions_per_user=10,
                       corpus_size=22, workers=2)
    first = table5(device, seed=0, users=1, actions_per_user=10,
                   corpus_size=22, workers=2, checkpoint=tmp_path)
    assert first.render() == reference.render()
    resumed = table5(device, seed=0, users=1, actions_per_user=10,
                     corpus_size=22, workers=2, checkpoint=tmp_path,
                     resume=True)
    assert resumed.render() == reference.render()
    assert resumed.execution.checkpoint_hits > 0
