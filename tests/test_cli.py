"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


def test_apps_lists_catalog(capsys):
    out = run_cli(capsys, "apps")
    assert "K9-mail" in out
    assert "AndStatus" in out


def test_session_detects_bugs(capsys):
    out = run_cli(capsys, "--seed", "42", "session", "K9-mail",
                  "--actions", "60")
    assert "HtmlCleaner.clean" in out
    assert "Hang Bug Report" in out


def test_scan_shows_known_and_missed(capsys):
    out = run_cli(capsys, "scan", "StickerCamera")
    assert "android.hardware.Camera.open" in out
    assert "0 ground-truth bug(s)" in out


def test_scan_source_only_misses_nested(capsys):
    out = run_cli(capsys, "scan", "Sage Math", "--source-only")
    assert "3 ground-truth bug(s)" in out


def test_testbed_single_app(capsys):
    out = run_cli(capsys, "--seed", "4", "testbed", "--app", "K9-mail")
    assert "Test bed vs in-the-wild" in out
    assert "HtmlCleaner.clean" in out


def test_unknown_device_rejected():
    with pytest.raises(SystemExit):
        main(["--device", "iphone", "apps"])


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        main(["scan", "Instagram"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_device_selection(capsys):
    out = run_cli(capsys, "--device", "nexus-5", "apps")
    assert "K9-mail" in out


def test_stream_quick_renders_series_and_report(capsys):
    out = run_cli(capsys, "--seed", "7", "stream", "--quick",
                  "--churn-rate", "0.2", "--verbose")
    assert "Stream - " in out
    assert "aggregate:" in out
    assert "execution:" in out


def test_stream_resume_requires_checkpoint():
    with pytest.raises(SystemExit, match="--resume requires"):
        main(["stream", "--quick", "--resume"])
