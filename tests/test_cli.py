"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


def test_apps_lists_catalog(capsys):
    out = run_cli(capsys, "apps")
    assert "K9-mail" in out
    assert "AndStatus" in out


def test_session_detects_bugs(capsys):
    out = run_cli(capsys, "--seed", "42", "session", "K9-mail",
                  "--actions", "60")
    assert "HtmlCleaner.clean" in out
    assert "Hang Bug Report" in out


def test_scan_shows_known_and_missed(capsys):
    out = run_cli(capsys, "scan", "StickerCamera")
    assert "android.hardware.Camera.open" in out
    assert "0 ground-truth bug(s)" in out


def test_scan_source_only_misses_nested(capsys):
    out = run_cli(capsys, "scan", "Sage Math", "--source-only")
    assert "3 ground-truth bug(s)" in out


def test_testbed_single_app(capsys):
    out = run_cli(capsys, "--seed", "4", "testbed", "--app", "K9-mail")
    assert "Test bed vs in-the-wild" in out
    assert "HtmlCleaner.clean" in out


def test_unknown_device_rejected():
    with pytest.raises(SystemExit):
        main(["--device", "iphone", "apps"])


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        main(["scan", "Instagram"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_device_selection(capsys):
    out = run_cli(capsys, "--device", "nexus-5", "apps")
    assert "K9-mail" in out


def test_stream_quick_renders_series_and_report(capsys):
    out = run_cli(capsys, "--seed", "7", "stream", "--quick",
                  "--churn-rate", "0.2", "--verbose")
    assert "Stream - " in out
    assert "aggregate:" in out
    assert "execution:" in out


def test_stream_resume_requires_checkpoint():
    with pytest.raises(SystemExit, match="--resume requires"):
        main(["stream", "--quick", "--resume"])


def _write_trace(directory, doctor_ms):
    """A minimal telemetry dir: one action whose doctor span lasts
    *doctor_ms* inside a 1-second execution."""
    from repro.telemetry import session, write_exports

    with session() as tel:
        with tel.track("app/demo"):
            tel.record_span("sim.action.execute", 0.0, 1000.0)
            tel.record_span("core.action.process", 0.0, doctor_ms)
            tel.record_span("core.diagnoser.collect", 0.0, 10.0)
    write_exports(tel, directory)


def test_slo_healthy_trace_exits_zero(capsys, tmp_path):
    _write_trace(tmp_path, doctor_ms=50.0)
    out = run_cli(capsys, "slo", str(tmp_path))
    assert "detection-latency" in out
    assert "EXHAUSTED" not in out


def test_slo_exhausted_budget_exits_nonzero(tmp_path):
    _write_trace(tmp_path, doctor_ms=900.0)
    with pytest.raises(SystemExit, match="error budget exhausted"):
        main(["slo", str(tmp_path)])


def test_slo_json_mode(capsys, tmp_path):
    import json

    _write_trace(tmp_path, doctor_ms=50.0)
    out = run_cli(capsys, "slo", str(tmp_path), "--json")
    payload = json.loads(out)
    names = [s["objective"] for s in payload["objectives"]]
    assert "detection-latency" in names
    assert payload["alerts"] == []


def test_dash_renders_sections(capsys, tmp_path):
    _write_trace(tmp_path, doctor_ms=50.0)
    out = run_cli(capsys, "dash", str(tmp_path))
    assert "-- SLOs --" in out
    assert "-- top spans by self time --" in out
