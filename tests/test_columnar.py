"""The columnar engine core and its two determinism contracts.

Full mode (``counter_events=None``) must stay *byte-identical* to the
seed's per-segment scalar implementation — the ``columnar=False``
reference path keeps that historical code, and these tests pin the
columnar path to it segment by segment and event by event.  Lazy mode
(a restricted event set) is a distinct deterministic universe: its
pooled draw layout is fixed per (seed, event set) and reproducible
run to run, but not sample-identical to the scalar path.
"""

import pytest

from repro.base.kinds import ApiKind
from repro.base.rng import stream
from repro.sim.counters import (
    ALL_EVENTS,
    CounterModel,
    DVFS_SIGMA,
    FILTER_EVENTS,
    KERNEL_EVENTS,
)
from repro.sim.engine import ActionExecution, ExecutionEngine
from repro.sim.timeline import MAIN_THREAD, Timeline

NEUTRAL_UARCH = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
                 "mem": 1.0}

#: (kind, thread, wall_ms, cpu_ms, pages, uarch, wait_chunk_override)
BATCH_ROWS = (
    (ApiKind.BLOCKING, MAIN_THREAD, 300.0, 180.0, 900, NEUTRAL_UARCH, None),
    (ApiKind.UI, MAIN_THREAD, 16.0, 9.0, 40, NEUTRAL_UARCH, None),
    (ApiKind.COMPUTE, "worker", 120.0, 110.0, 200, NEUTRAL_UARCH, 25.0),
    (ApiKind.LIGHT, "render", 5.0, 4.5, 2, NEUTRAL_UARCH, None),
)


class RecordingRng:
    """Delegating rng proxy that records which draw methods were hit.

    ``lognormal`` sigmas are recorded too: kernel events draw scalar
    sigmas (clock jitter, migration load factor), while the PMU block
    announces itself with the DVFS draw (``sigma=DVFS_SIGMA``) or a
    pooled array-sigma draw.
    """

    def __init__(self, rng):
        self._rng = rng
        self.calls = []
        self.lognormal_sigmas = []

    def __getattr__(self, name):
        method = getattr(self._rng, name)

        def wrapped(*args, **kwargs):
            self.calls.append(name)
            if name == "lognormal":
                sigma = kwargs.get("sigma", args[1] if len(args) > 1 else None)
                self.lognormal_sigmas.append(sigma)
            return method(*args, **kwargs)

        return wrapped

    def pmu_draws(self):
        """Lognormal draws attributable to DVFS or the PMU block."""
        return [
            sigma for sigma in self.lognormal_sigmas
            if not isinstance(sigma, float) or sigma == DVFS_SIGMA
        ]


def _snapshot(execution):
    """The observable surface of an execution, for equality checks."""
    return (
        execution.start_ms,
        execution.end_ms,
        execution.events,
        execution.timeline.segments(),
    )


def _run(device, *, seed, counter_events, columnar, app, count=5):
    engine = ExecutionEngine(
        device, seed=seed, counter_events=counter_events, columnar=columnar
    )
    actions = [app.actions[i % len(app.actions)] for i in range(count)]
    return [_snapshot(engine.run_action(app, action)) for action in actions]


def test_full_mode_columnar_matches_reference_bit_for_bit(device, k9):
    """The byte-identity contract: with all 46 events, the columnar
    engine replays the reference scalar draw order exactly — every
    segment field and every event timing is equal."""
    columnar = _run(device, seed=7, counter_events=None, columnar=True,
                    app=k9)
    reference = _run(device, seed=7, counter_events=None, columnar=False,
                     app=k9)
    assert columnar == reference


def test_lazy_engine_reproducible_per_seed_and_event_set(device, k9):
    """The pooled lazy universe: same (seed, event set) gives the same
    executions run to run; a different seed gives different ones."""
    first = _run(device, seed=11, counter_events=FILTER_EVENTS,
                 columnar=True, app=k9)
    second = _run(device, seed=11, counter_events=FILTER_EVENTS,
                  columnar=True, app=k9)
    other = _run(device, seed=12, counter_events=FILTER_EVENTS,
                 columnar=True, app=k9)
    assert first == second
    assert first != other


def test_segment_batch_reproducible_per_seed_and_event_set(device):
    def rows(events, key):
        model = CounterModel(device, events=events)
        return model.segment_batch(BATCH_ROWS, rng=stream("batch", key))

    assert rows(FILTER_EVENTS, "a") == rows(FILTER_EVENTS, "a")
    assert rows(FILTER_EVENTS, "a") != rows(FILTER_EVENTS, "b")


def test_segment_batch_rejects_full_model(device):
    model = CounterModel(device)
    with pytest.raises(ValueError, match="byte-identity|scalar draw order"):
        model.segment_batch(BATCH_ROWS, rng=stream("batch", 0))


@pytest.mark.parametrize("event", ALL_EVENTS)
def test_every_single_event_subset_returns_exactly_that_key(device, event):
    """Satellite guard: a model restricted to any one of the 46 events
    yields exactly that key, on both the scalar and the batch path."""
    model = CounterModel(device, events=(event,))
    counts = model.segment_counts(
        kind=ApiKind.BLOCKING, thread=MAIN_THREAD, wall_ms=300.0,
        cpu_ms=180.0, pages=900, uarch=NEUTRAL_UARCH,
        rng=stream("single", event),
    )
    assert tuple(counts) == (event,)
    rows = model.segment_batch(BATCH_ROWS, rng=stream("single", event))
    assert len(rows) == len(BATCH_ROWS)
    assert all(tuple(row) == (event,) for row in rows)


@pytest.mark.parametrize("events", [
    FILTER_EVENTS,
    KERNEL_EVENTS,
    ("context-switches",),
    ("page-faults", "minor-faults"),
])
def test_kernel_only_subsets_perform_no_pmu_draws(device, events):
    """The 37-event PMU block (and its DVFS lognormal) must not touch
    the rng when no PMU event is requested."""
    model = CounterModel(device, events=events)
    spy = RecordingRng(stream("no-pmu", str(events)))
    model.segment_counts(
        kind=ApiKind.BLOCKING, thread=MAIN_THREAD, wall_ms=300.0,
        cpu_ms=180.0, pages=900, uarch=NEUTRAL_UARCH, rng=spy,
    )
    model.segment_batch(BATCH_ROWS, rng=spy)
    assert spy.calls, "spy never saw a draw"
    assert spy.pmu_draws() == []


def test_pmu_subset_still_draws_dvfs(device):
    """Requesting even one PMU event re-enables the DVFS lognormal."""
    model = CounterModel(device, events=("instructions",))
    spy = RecordingRng(stream("yes-pmu", 0))
    model.segment_batch(BATCH_ROWS, rng=spy)
    assert spy.pmu_draws()


def test_action_execution_empty_event_list_response_time(device, k9):
    """Regression: an execution with no input events reports 0.0 ms
    instead of raising ``max() arg is an empty sequence``."""
    execution = ActionExecution(
        app=k9, action=k9.actions[0], start_ms=0.0, end_ms=0.0,
        events=(), timeline=Timeline(),
    )
    assert execution.response_time_ms == 0.0
    assert not execution.has_soft_hang
    assert execution.hang_events() == []
