"""Tests for repro.core.adaptation (filter self-tuning)."""

import pytest

from repro.analysis.correlation import CounterSample
from repro.core.adaptation import FilterAdapter


def sample(values, label):
    return CounterSample(values=values, is_hang_bug=label)


def test_no_errors_no_adaptation():
    adapter = FilterAdapter()
    samples = [
        sample({"a": 10.0}, True),
        sample({"a": -10.0}, False),
    ]
    result = adapter.adapt({"a": 0.0}, samples)
    assert result.mode == "none"
    assert result.thresholds == {"a": 0.0}


def test_light_adaptation_fixes_false_negative():
    """A bug sample below the threshold: nudge the threshold down."""
    adapter = FilterAdapter()
    samples = [
        sample({"a": 5.0}, True),
        sample({"a": -2.0}, True),   # missed at threshold 0
        sample({"a": -10.0}, False),
    ]
    result = adapter.adapt({"a": 0.0}, samples)
    assert result.mode == "light"
    assert result.thresholds["a"] < -2.0
    assert result.errors_after[0] == 0  # no FN remain


def test_light_adaptation_fixes_false_positive():
    """A UI sample above the threshold, below every bug: nudge up."""
    adapter = FilterAdapter()
    samples = [
        sample({"a": 10.0}, True),
        sample({"a": 3.0}, False),   # false positive at threshold 0
        sample({"a": -10.0}, False),
    ]
    result = adapter.adapt({"a": 0.0}, samples)
    assert result.mode == "light"
    assert 3.0 <= result.thresholds["a"] < 10.0
    assert result.errors_after == (0, 0)


def test_heavy_adaptation_changes_event_set():
    """When nudging cannot help (the event is uninformative), the
    heavy pass re-selects events entirely."""
    adapter = FilterAdapter(candidate_events=["a", "b"])
    samples = [
        sample({"a": 0.0, "b": 10.0}, True),
        sample({"a": 0.0, "b": 12.0}, True),
        sample({"a": 0.0, "b": -10.0}, False),
        sample({"a": 0.0, "b": -12.0}, False),
    ]
    result = adapter.adapt({"a": 100.0}, samples)
    assert result.mode == "heavy"
    assert "b" in result.thresholds
    assert result.errors_after == (0, 0)


def test_adaptation_never_increases_false_negatives():
    adapter = FilterAdapter(candidate_events=["a"])
    samples = [
        sample({"a": 5.0 + i}, True) for i in range(5)
    ] + [
        sample({"a": -5.0 - i}, False) for i in range(5)
    ] + [
        sample({"a": 2.0}, False)
    ]
    result = adapter.adapt({"a": 4.0}, samples)
    fn_before, _ = result.errors_before
    fn_after, _ = result.errors_after
    assert fn_after <= fn_before


def test_result_reports_error_deltas():
    adapter = FilterAdapter()
    samples = [
        sample({"a": 5.0}, True),
        sample({"a": -2.0}, True),
        sample({"a": -10.0}, False),
    ]
    result = adapter.adapt({"a": 0.0}, samples)
    assert result.errors_before == (1, 0)
