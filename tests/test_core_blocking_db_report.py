"""Tests for the blocking-API database and the Hang Bug Report."""

import pytest

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.report import HangBugReport


# --- BlockingApiDatabase ----------------------------------------------------


def test_initial_database_knows_classic_apis():
    db = BlockingApiDatabase.initial()
    assert db.knows("android.hardware.Camera.open")
    assert db.knows("android.graphics.BitmapFactory.decodeFile")
    assert db.knows("android.database.sqlite.SQLiteDatabase.query")


def test_initial_database_misses_unknown_apis():
    db = BlockingApiDatabase.initial()
    assert not db.knows("org.htmlcleaner.HtmlCleaner.clean")
    assert not db.knows("com.google.gson.Gson.toJson")


def test_add_records_runtime_discovery():
    db = BlockingApiDatabase.initial()
    assert db.add("org.htmlcleaner.HtmlCleaner.clean")
    assert db.knows("org.htmlcleaner.HtmlCleaner.clean")
    assert db.runtime_discoveries() == ["org.htmlcleaner.HtmlCleaner.clean"]


def test_add_known_api_is_noop():
    db = BlockingApiDatabase.initial()
    assert not db.add("android.hardware.Camera.open")
    assert db.runtime_discoveries() == []


def test_contains_and_len():
    db = BlockingApiDatabase({"a.B.c"})
    assert "a.B.c" in db
    assert len(db) == 1


def test_names_returns_copy():
    db = BlockingApiDatabase({"a.B.c"})
    names = db.names()
    names.add("x.Y.z")
    assert "x.Y.z" not in db


# --- HangBugReport ------------------------------------------------------------


def record(report, operation="org.htmlcleaner.HtmlCleaner.clean",
           rt=1300.0, device=0, occ=0.96):
    report.record(
        operation=operation, file="HtmlCleaner.java", line=25,
        is_self_developed=False, response_time_ms=rt,
        occurrence_factor=occ, device_id=device,
    )


def test_report_aggregates_occurrences():
    report = HangBugReport("K9-mail")
    record(report)
    record(report, rt=1100.0, device=1)
    assert len(report) == 1
    entry = report.entries()[0]
    assert entry.occurrences == 2
    assert entry.devices == {0, 1}
    assert entry.mean_hang_ms == pytest.approx(1200.0)


def test_report_orders_by_occurrences():
    report = HangBugReport("AndStatus")
    for _ in range(5):
        record(report, operation="a.B.transform")
    record(report, operation="c.D.decode")
    entries = report.entries()
    assert entries[0].operation == "a.B.transform"


def test_occurrence_share():
    report = HangBugReport("AndStatus")
    for _ in range(3):
        record(report, operation="a.B.transform")
    record(report, operation="c.D.decode")
    shares = [report.occurrence_share(e) for e in report.entries()]
    assert shares == pytest.approx([0.75, 0.25])


def test_max_occurrence_factor_kept():
    report = HangBugReport("K9-mail")
    record(report, occ=0.8)
    record(report, occ=0.96)
    assert report.entries()[0].max_occurrence_factor == 0.96


def test_render_contains_rows():
    report = HangBugReport("AndStatus")
    record(report, operation="a.B.transform")
    text = report.render()
    assert "AndStatus" in text
    assert "a.B.transform" in text
    assert "100%" in text


def test_empty_report():
    report = HangBugReport("Empty")
    assert len(report) == 0
    assert report.total_occurrences() == 0
    assert "Empty" in report.render()


def test_merge_folds_other_database_case_sensitively():
    db = BlockingApiDatabase({"a.B.c"})
    other = BlockingApiDatabase({"a.b.c", "x.Y.z"})
    other.add("q.R.s")
    added = db.merge(other)
    # a.b.c and a.B.c differ: Java identifiers are case-sensitive.
    assert added == 3
    assert db.names() == {"a.B.c", "a.b.c", "x.Y.z", "q.R.s"}
    # Merged names are not this database's own discoveries, but the
    # other side's discovery provenance survives the fold.
    assert db.runtime_discoveries() == ["q.R.s"]
    assert db.merge(other) == 0


def test_sorted_names_is_the_iteration_order():
    db = BlockingApiDatabase({"z.Z.z", "a.A.a", "m.M.m"})
    assert db.sorted_names() == ["a.A.a", "m.M.m", "z.Z.z"]
    assert list(db) == db.sorted_names()
    db.add("b.B.b")
    assert list(db) == ["a.A.a", "b.B.b", "m.M.m", "z.Z.z"]


def test_report_keeps_per_action_entries():
    """The same root cause under two actions stays two entries (the
    crowd backend dedupes by action-qualified signature)."""
    report = HangBugReport("K9-mail")
    for action in ("open_email", "search"):
        report.record(
            operation="a.B.c", file="B.java", line=4,
            is_self_developed=False, response_time_ms=600.0,
            occurrence_factor=0.5, action=action,
        )
    assert len(report) == 2
    signatures = {
        entry.root_cause_signature("K9-mail") for entry in report.entries()
    }
    assert signatures == {
        "K9-mail|open_email|a.B.c|occ5",
        "K9-mail|search|a.B.c|occ5",
    }
