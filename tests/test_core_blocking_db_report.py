"""Tests for the blocking-API database and the Hang Bug Report."""

import pytest

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.report import HangBugReport


# --- BlockingApiDatabase ----------------------------------------------------


def test_initial_database_knows_classic_apis():
    db = BlockingApiDatabase.initial()
    assert db.knows("android.hardware.Camera.open")
    assert db.knows("android.graphics.BitmapFactory.decodeFile")
    assert db.knows("android.database.sqlite.SQLiteDatabase.query")


def test_initial_database_misses_unknown_apis():
    db = BlockingApiDatabase.initial()
    assert not db.knows("org.htmlcleaner.HtmlCleaner.clean")
    assert not db.knows("com.google.gson.Gson.toJson")


def test_add_records_runtime_discovery():
    db = BlockingApiDatabase.initial()
    assert db.add("org.htmlcleaner.HtmlCleaner.clean")
    assert db.knows("org.htmlcleaner.HtmlCleaner.clean")
    assert db.runtime_discoveries() == ["org.htmlcleaner.HtmlCleaner.clean"]


def test_add_known_api_is_noop():
    db = BlockingApiDatabase.initial()
    assert not db.add("android.hardware.Camera.open")
    assert db.runtime_discoveries() == []


def test_contains_and_len():
    db = BlockingApiDatabase({"a.B.c"})
    assert "a.B.c" in db
    assert len(db) == 1


def test_names_returns_copy():
    db = BlockingApiDatabase({"a.B.c"})
    names = db.names()
    names.add("x.Y.z")
    assert "x.Y.z" not in db


# --- HangBugReport ------------------------------------------------------------


def record(report, operation="org.htmlcleaner.HtmlCleaner.clean",
           rt=1300.0, device=0, occ=0.96):
    report.record(
        operation=operation, file="HtmlCleaner.java", line=25,
        is_self_developed=False, response_time_ms=rt,
        occurrence_factor=occ, device_id=device,
    )


def test_report_aggregates_occurrences():
    report = HangBugReport("K9-mail")
    record(report)
    record(report, rt=1100.0, device=1)
    assert len(report) == 1
    entry = report.entries()[0]
    assert entry.occurrences == 2
    assert entry.devices == {0, 1}
    assert entry.mean_hang_ms == pytest.approx(1200.0)


def test_report_orders_by_occurrences():
    report = HangBugReport("AndStatus")
    for _ in range(5):
        record(report, operation="a.B.transform")
    record(report, operation="c.D.decode")
    entries = report.entries()
    assert entries[0].operation == "a.B.transform"


def test_occurrence_share():
    report = HangBugReport("AndStatus")
    for _ in range(3):
        record(report, operation="a.B.transform")
    record(report, operation="c.D.decode")
    shares = [report.occurrence_share(e) for e in report.entries()]
    assert shares == pytest.approx([0.75, 0.25])


def test_max_occurrence_factor_kept():
    report = HangBugReport("K9-mail")
    record(report, occ=0.8)
    record(report, occ=0.96)
    assert report.entries()[0].max_occurrence_factor == 0.96


def test_render_contains_rows():
    report = HangBugReport("AndStatus")
    record(report, operation="a.B.transform")
    text = report.render()
    assert "AndStatus" in text
    assert "a.B.transform" in text
    assert "100%" in text


def test_empty_report():
    report = HangBugReport("Empty")
    assert len(report) == 0
    assert report.total_occurrences() == 0
    assert "Empty" in report.render()
