"""Tests for repro.core.config and repro.sim.device."""

import pytest

from repro.core.config import HangDoctorConfig, PAPER_THRESHOLDS
from repro.sim.device import ALL_DEVICES, GALAXY_S3, LG_V10, NEXUS_5


def test_default_config_is_valid():
    config = HangDoctorConfig().validate()
    assert config.perceivable_delay_ms == 100.0
    assert set(config.filter_events()) == {
        "context-switches", "task-clock", "page-faults"
    }


def test_paper_thresholds_preserved():
    assert PAPER_THRESHOLDS == {
        "context-switches": 0.0,
        "task-clock": 1.7e8,
        "page-faults": 500.0,
    }


def test_context_switch_threshold_is_zero():
    """The sign condition (positive difference) is device-independent."""
    assert HangDoctorConfig().filter_thresholds["context-switches"] == 0.0


@pytest.mark.parametrize("field,value", [
    ("perceivable_delay_ms", 0.0),
    ("normal_reset_period", 0),
    ("trace_period_ms", 0.0),
    ("occurrence_threshold", 0.0),
    ("occurrence_threshold", 1.5),
])
def test_config_validation_rejects_bad_values(field, value):
    config = HangDoctorConfig(**{field: value})
    with pytest.raises(ValueError):
        config.validate()


def test_empty_filter_rejected():
    with pytest.raises(ValueError):
        HangDoctorConfig(filter_thresholds={}).validate()


def test_filter_events_preserve_order():
    config = HangDoctorConfig(
        filter_thresholds={"task-clock": 1.0, "context-switches": 0.0}
    )
    assert config.filter_events() == ("task-clock", "context-switches")


def test_three_device_profiles():
    assert len(ALL_DEVICES) == 3
    assert {d.name for d in ALL_DEVICES} == {
        "LG V10", "Nexus 5", "Galaxy S3"
    }


def test_lg_v10_matches_paper():
    """The paper: 37 PMU events vs 6 registers on the LG V10."""
    assert LG_V10.pmu_registers == 6
    assert LG_V10.pmu_events_available == 37


def test_cycles_per_ms():
    assert LG_V10.cycles_per_ms == pytest.approx(1.8e6)


def test_devices_are_distinct():
    assert NEXUS_5.cpu_freq_ghz != GALAXY_S3.cpu_freq_ghz
    assert NEXUS_5.pmu_registers < LG_V10.pmu_registers


def test_devices_are_frozen():
    with pytest.raises(Exception):
        LG_V10.cores = 8
