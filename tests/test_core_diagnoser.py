"""Tests for repro.core.diagnoser (phase-2 trace collection + analysis)."""

import pytest

from repro.core.config import HangDoctorConfig
from repro.core.diagnoser import Diagnoser
from tests.helpers import run_until


@pytest.fixture()
def diagnoser(k9):
    return Diagnoser(HangDoctorConfig(), app_package=k9.package)


def test_no_hang_no_collection(engine, k9, diagnoser):
    execution = run_until(
        engine, k9, "open_email", lambda ex: not ex.has_soft_hang
    )
    result = diagnoser.diagnose(execution)
    assert not result.diagnosed
    assert result.samples == 0
    assert not result.found_hang_bug


def test_bug_hang_is_diagnosed(engine, k9, diagnoser):
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    result = diagnoser.diagnose(execution)
    assert result.diagnosed
    assert result.found_hang_bug
    bug = result.bug_diagnoses()[0]
    assert bug.diagnosis.root.method == "clean"
    assert bug.diagnosis.occurrence > 0.8


def test_ui_hang_is_not_a_bug(engine, k9, diagnoser):
    execution = run_until(
        engine, k9, "folders", lambda ex: ex.has_soft_hang
    )
    result = diagnoser.diagnose(execution)
    assert result.diagnosed
    assert not result.found_hang_bug


def test_samples_proportional_to_hang_length(engine, k9, diagnoser):
    execution = run_until(
        engine, k9, "open_email",
        lambda ex: ex.bug_caused_hang() and ex.response_time_ms > 800,
    )
    result = diagnoser.diagnose(execution)
    hang_ms = max(e.response_time_ms for e in execution.events)
    expected = hang_ms / HangDoctorConfig().trace_period_ms
    assert result.samples == pytest.approx(expected, rel=0.3)


def test_only_hanging_events_are_traced(engine, k9, diagnoser):
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    hang_count = len(execution.hang_events())
    result = diagnoser.diagnose(execution)
    assert len(result.hang_diagnoses) == hang_count


def test_diagnosis_window_matches_hang_event(engine, k9, diagnoser):
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    result = diagnoser.diagnose(execution)
    hang_event = execution.hang_events()[0]
    diagnosis = result.hang_diagnoses[0]
    assert diagnosis.start_ms == hang_event.dispatch_ms
    assert diagnosis.end_ms == hang_event.finish_ms


def test_self_developed_loop_diagnosed(engine, diagnoser):
    from repro.apps.catalog import get_app

    k9 = get_app("K9-mail")
    diagnoser = Diagnoser(HangDoctorConfig(), app_package=k9.package)
    execution = run_until(
        engine, k9, "search_messages", lambda ex: ex.bug_caused_hang()
    )
    result = diagnoser.diagnose(execution)
    bug = result.bug_diagnoses()[0]
    assert bug.diagnosis.is_self_developed
    assert bug.diagnosis.root.method == "buildThreadIndex"
