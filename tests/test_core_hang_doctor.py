"""Tests for repro.core.hang_doctor (the two-phase orchestrator)."""

import pytest

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.config import HangDoctorConfig
from repro.core.hang_doctor import HangDoctor
from repro.core.states import ActionState
from repro.sim.engine import ExecutionEngine
from tests.helpers import run_until


def drive_to_detection(doctor, engine, app, action_name, attempts=60):
    """Process executions until Hang Doctor emits a detection."""
    action = app.action(action_name)
    for _ in range(attempts):
        execution = engine.run_action(app, action)
        outcome = doctor.process(execution)
        if outcome.detections:
            return execution, outcome
    raise AssertionError(f"no detection for {action_name}")


def test_all_actions_start_uncategorized(device, k9):
    doctor = HangDoctor(k9, device)
    for action in k9.actions:
        assert doctor.state_of(action.name) is ActionState.UNCATEGORIZED


def test_full_detection_story(device, k9):
    engine = ExecutionEngine(device, seed=21)
    doctor = HangDoctor(k9, device, seed=21)
    execution, outcome = drive_to_detection(doctor, engine, k9, "open_email")
    detection = outcome.detections[0]
    assert detection.root.method == "clean"
    assert doctor.state_of("open_email") is ActionState.HANG_BUG
    assert len(doctor.report) >= 1


def test_detection_adds_api_to_blocking_db(device, k9):
    engine = ExecutionEngine(device, seed=21)
    db = BlockingApiDatabase.initial()
    doctor = HangDoctor(k9, device, blocking_db=db, seed=21)
    drive_to_detection(doctor, engine, k9, "open_email")
    assert db.knows("org.htmlcleaner.HtmlCleaner.clean")
    assert "org.htmlcleaner.HtmlCleaner.clean" in db.runtime_discoveries()


def test_self_developed_bug_not_added_to_db(device, k9):
    engine = ExecutionEngine(device, seed=21)
    db = BlockingApiDatabase.initial()
    doctor = HangDoctor(k9, device, blocking_db=db, seed=21)
    _, outcome = drive_to_detection(doctor, engine, k9, "search_messages")
    detection = outcome.detections[0]
    assert detection.is_self_developed
    assert not db.knows(detection.root_name)


def test_ui_action_goes_normal_without_tracing(device, k9):
    engine = ExecutionEngine(device, seed=5)
    doctor = HangDoctor(k9, device, seed=5)
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    outcome = doctor.process(execution)
    assert doctor.state_of("folders") in (
        ActionState.NORMAL, ActionState.SUSPICIOUS
    )
    assert not outcome.trace_episodes


def test_uncategorized_pays_counter_monitoring(device, k9):
    engine = ExecutionEngine(device, seed=5)
    doctor = HangDoctor(k9, device, seed=5)
    execution = engine.run_action(k9, k9.action("folders"))
    outcome = doctor.process(execution)
    assert outcome.cost.counter_window_ms > 0


def test_normal_actions_pay_only_response_time(device, k9):
    engine = ExecutionEngine(device, seed=5)
    doctor = HangDoctor(k9, device, seed=5)
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    doctor.process(execution)
    if doctor.state_of("folders") is not ActionState.NORMAL:
        pytest.skip("filter flagged this UI hang (borderline seed)")
    execution = engine.run_action(k9, k9.action("folders"))
    outcome = doctor.process(execution)
    assert outcome.cost.counter_window_ms == 0
    assert outcome.cost.trace_samples == 0
    assert outcome.cost.rt_events > 0


def test_no_hang_stays_uncategorized(device, k9):
    engine = ExecutionEngine(device, seed=5)
    doctor = HangDoctor(k9, device, seed=5)
    execution = run_until(
        engine, k9, "open_email", lambda ex: not ex.has_soft_hang
    )
    doctor.process(execution)
    assert doctor.state_of("open_email") is ActionState.UNCATEGORIZED


def test_suspicious_persists_until_next_hang(device, k9):
    engine = ExecutionEngine(device, seed=21)
    doctor = HangDoctor(k9, device, seed=21)
    run = run_until(engine, k9, "open_email", lambda ex: ex.bug_caused_hang())
    doctor.process(run)
    assert doctor.state_of("open_email") is ActionState.SUSPICIOUS
    quiet = run_until(
        engine, k9, "open_email", lambda ex: not ex.has_soft_hang
    )
    outcome = doctor.process(quiet)
    assert doctor.state_of("open_email") is ActionState.SUSPICIOUS
    assert not outcome.trace_episodes


def test_hang_bug_state_keeps_tracing(device, k9):
    engine = ExecutionEngine(device, seed=21)
    doctor = HangDoctor(k9, device, seed=21)
    drive_to_detection(doctor, engine, k9, "open_email")
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    outcome = doctor.process(execution)
    assert outcome.trace_episodes
    assert doctor.state_of("open_email") is ActionState.HANG_BUG


def test_trace_hang_bug_state_off_stops_tracing(device, k9):
    config = HangDoctorConfig(trace_hang_bug_state=False)
    engine = ExecutionEngine(device, seed=21)
    doctor = HangDoctor(k9, device, config=config, seed=21)
    drive_to_detection(doctor, engine, k9, "open_email")
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    outcome = doctor.process(execution)
    assert not outcome.trace_episodes


def test_normal_reset_reexamines_action(device, k9):
    config = HangDoctorConfig(normal_reset_period=2)
    engine = ExecutionEngine(device, seed=5)
    doctor = HangDoctor(k9, device, config=config, seed=5)
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    doctor.process(execution)
    if doctor.state_of("folders") is not ActionState.NORMAL:
        pytest.skip("filter flagged this UI hang (borderline seed)")
    for _ in range(2):
        doctor.process(engine.run_action(k9, k9.action("folders")))
    assert doctor.state_of("folders") is ActionState.UNCATEGORIZED


def test_report_accumulates_across_devices(device, k9):
    engine = ExecutionEngine(device, seed=21)
    doctor = HangDoctor(k9, device, seed=21)
    action = k9.action("open_email")
    devices = set()
    for index in range(40):
        execution = engine.run_action(k9, action)
        outcome = doctor.process(execution, device_id=index % 3)
        if outcome.detections:
            devices.add(index % 3)
        if len(devices) >= 2:
            break
    entry = doctor.report.entries()[0]
    assert len(entry.devices) >= 2


def test_multi_bug_action_detects_both_roots(device, andstatus):
    """AndStatus-style actions can hide several bugs that manifest in
    different executions; Hang Doctor keeps diagnosing (paper §3.2)."""
    engine = ExecutionEngine(device, seed=13)
    doctor = HangDoctor(andstatus, device, seed=13)
    roots = set()
    for _ in range(120):
        action_name = (
            "scroll_timeline" if len(roots) % 2 == 0 else "open_post"
        )
        execution = engine.run_action(andstatus,
                                      andstatus.action(action_name))
        outcome = doctor.process(execution)
        roots.update(d.root_name for d in outcome.detections)
        if len(roots) >= 2:
            break
    assert len(roots) >= 2
