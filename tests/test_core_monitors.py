"""Tests for the response-time and performance-event monitors."""

import pytest

from repro.core.config import HangDoctorConfig
from repro.core.event_monitor import PerformanceEventMonitor
from repro.core.injector import AppInjector
from repro.core.response_monitor import ResponseTimeMonitor
from repro.sim.looper import DISPATCH_PREFIX, FINISH_PREFIX, Looper, Message
from repro.sim.timeline import MAIN_THREAD


# --- ResponseTimeMonitor ---------------------------------------------------


def test_monitor_measures_between_logging_calls():
    monitor = ResponseTimeMonitor()
    monitor.printer(f"{DISPATCH_PREFIX}click", 100.0)
    monitor.printer(f"{FINISH_PREFIX}click", 340.0)
    assert monitor.response_times() == [240.0]


def test_monitor_max_response_time():
    monitor = ResponseTimeMonitor()
    for target, start, end in (("a", 0, 50), ("b", 60, 400)):
        monitor.printer(f"{DISPATCH_PREFIX}{target}", start)
        monitor.printer(f"{FINISH_PREFIX}{target}", end)
    assert monitor.max_response_time() == 340.0


def test_monitor_hangs_filter():
    monitor = ResponseTimeMonitor()
    for target, start, end in (("a", 0, 50), ("b", 60, 400)):
        monitor.printer(f"{DISPATCH_PREFIX}{target}", start)
        monitor.printer(f"{FINISH_PREFIX}{target}", end)
    hangs = monitor.hangs(threshold_ms=100.0)
    assert [h.target for h in hangs] == ["b"]


def test_monitor_rejects_mismatched_finish():
    monitor = ResponseTimeMonitor()
    monitor.printer(f"{DISPATCH_PREFIX}a", 0.0)
    with pytest.raises(ValueError):
        monitor.printer(f"{FINISH_PREFIX}b", 10.0)


def test_monitor_rejects_nested_dispatch():
    monitor = ResponseTimeMonitor()
    monitor.printer(f"{DISPATCH_PREFIX}a", 0.0)
    with pytest.raises(ValueError):
        monitor.printer(f"{DISPATCH_PREFIX}b", 5.0)


def test_monitor_rejects_garbage_line():
    with pytest.raises(ValueError):
        ResponseTimeMonitor().printer("hello", 0.0)


def test_monitor_reset():
    monitor = ResponseTimeMonitor()
    monitor.printer(f"{DISPATCH_PREFIX}a", 0.0)
    monitor.reset()
    assert monitor.max_response_time() == 0.0
    monitor.printer(f"{DISPATCH_PREFIX}b", 0.0)  # no error: state cleared


def test_monitor_attach_to_looper():
    looper = Looper()
    monitor = ResponseTimeMonitor().attach(looper)
    looper.post(Message(target="tap", payload=None, enqueue_ms=0.0))
    looper.dispatch_all(lambda m, t: t + 120.0, 0.0)
    assert monitor.response_times() == [120.0]


# --- PerformanceEventMonitor ------------------------------------------------


def test_event_monitor_reads_differences(engine, k9):
    config = HangDoctorConfig()
    monitor = PerformanceEventMonitor(engine.device, config.filter_events())
    execution = engine.run_action(k9, k9.action("folders"))
    values = monitor.read_differences(execution)
    assert set(values) == set(config.filter_events())
    for event in config.filter_events():
        expected = execution.counter_difference(
            event, execution.start_ms, execution.end_ms
        )
        assert values[event] == pytest.approx(expected)


def test_event_monitor_accumulates_cost(engine, k9):
    monitor = PerformanceEventMonitor(engine.device, ("task-clock",))
    execution = engine.run_action(k9, k9.action("folders"))
    monitor.read_differences(execution)
    assert monitor.reads == 1
    assert monitor.monitored_ms == pytest.approx(
        execution.end_ms - execution.start_ms
    )


def test_event_monitor_thread_totals(engine, k9):
    monitor = PerformanceEventMonitor(engine.device, ("task-clock",))
    execution = engine.run_action(k9, k9.action("folders"))
    totals = monitor.read_thread_totals(execution, MAIN_THREAD)
    assert totals["task-clock"] > 0


# --- AppInjector -------------------------------------------------------------


def test_injector_assigns_sequential_uids(k9):
    injector = AppInjector(k9)
    uids = [row.uid for row in injector.rows()]
    assert uids == list(range(1, len(k9.actions) + 1))


def test_injector_lookup_roundtrip(k9):
    injector = AppInjector(k9)
    for action in k9.actions:
        uid = injector.uid_of(action.name)
        assert injector.action_name(uid) == action.name


def test_injector_unknown_action(k9):
    with pytest.raises(KeyError):
        AppInjector(k9).uid_of("missing")


def test_injector_len(k9):
    assert len(AppInjector(k9)) == len(k9.actions)
