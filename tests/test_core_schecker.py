"""Tests for repro.core.schecker (the phase-1 filter)."""

import pytest

from repro.core.config import HangDoctorConfig
from repro.core.schecker import SChecker, SymptomCheck
from tests.helpers import run_until


@pytest.fixture()
def schecker(device):
    return SChecker(HangDoctorConfig(), device)


def test_evaluate_fires_above_threshold(schecker):
    check = schecker.evaluate({"context-switches": 5.0, "task-clock": 0.0,
                               "page-faults": 0.0})
    assert check.symptomatic
    assert check.fired_events() == ["context-switches"]


def test_evaluate_strictly_greater(schecker):
    check = schecker.evaluate({"context-switches": 0.0, "task-clock": 0.0,
                               "page-faults": 0.0})
    assert not check.symptomatic


def test_evaluate_any_condition_suffices(schecker):
    check = schecker.evaluate({
        "context-switches": -10.0,
        "task-clock": 0.0,
        "page-faults": 10_000.0,
    })
    assert check.symptomatic
    assert check.fired_events() == ["page-faults"]


def test_missing_events_treated_as_zero(schecker):
    check = schecker.evaluate({})
    assert not check.symptomatic


def test_bug_hang_is_symptomatic(engine, k9, schecker):
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    assert schecker.check(execution).symptomatic


def test_render_heavy_ui_hang_is_filtered(engine, k9, schecker):
    execution = run_until(
        engine, k9, "folders", lambda ex: ex.has_soft_hang
    )
    assert not schecker.check(execution).symptomatic


def test_compute_loop_fires_task_clock(engine, schecker):
    from repro.apps.catalog import get_app

    qksms = get_app("QKSMS")
    execution = run_until(
        engine, qksms, "verify_backup", lambda ex: ex.bug_caused_hang()
    )
    check = schecker.check(execution)
    assert check.fired["task-clock"]


def test_page_fault_only_bug(engine, schecker):
    """Omni-Notes bugs are caught by page faults, not switches."""
    from repro.apps.catalog import get_app

    omni = get_app("Omni-Notes")
    fired = {"context-switches": 0, "page-faults": 0}
    hangs = 0
    for _ in range(15):
        execution = engine.run_action(omni, omni.action("open_note"))
        if not execution.bug_caused_hang():
            continue
        hangs += 1
        check = schecker.check(execution)
        for event in fired:
            fired[event] += check.fired[event]
    assert hangs > 0
    assert fired["page-faults"] >= hangs * 0.55
    assert fired["context-switches"] < hangs * 0.3


def test_symptom_check_is_pure_data():
    check = SymptomCheck(values={"x": 1.0}, fired={"x": True})
    assert check.symptomatic
    assert check.values == {"x": 1.0}


def test_check_accounts_monitoring_cost(engine, k9, schecker):
    execution = run_until(
        engine, k9, "folders", lambda ex: ex.has_soft_hang
    )
    before = schecker.monitor.reads
    schecker.check(execution)
    assert schecker.monitor.reads == before + 1
