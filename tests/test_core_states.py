"""Tests for repro.core.states (Figure 3's state machine)."""

import pytest

from repro.core.states import ActionState, ActionStateMachine


@pytest.fixture()
def machine():
    m = ActionStateMachine(reset_period=3)
    m.register(1)
    return m


def test_actions_start_uncategorized(machine):
    assert machine.state(1) is ActionState.UNCATEGORIZED


def test_register_is_idempotent(machine):
    machine.transition(1, ActionState.NORMAL, "S-Checker")
    machine.register(1)
    assert machine.state(1) is ActionState.NORMAL


def test_path_a_uncategorized_to_normal(machine):
    machine.transition(1, ActionState.NORMAL, "S-Checker")
    assert machine.state(1) is ActionState.NORMAL


def test_path_b_suspicious_to_normal(machine):
    machine.transition(1, ActionState.SUSPICIOUS, "S-Checker")
    machine.transition(1, ActionState.NORMAL, "Diagnoser")
    assert machine.state(1) is ActionState.NORMAL


def test_path_c_suspicious_to_hang_bug(machine):
    machine.transition(1, ActionState.SUSPICIOUS, "S-Checker")
    machine.transition(1, ActionState.HANG_BUG, "Diagnoser")
    assert machine.state(1) is ActionState.HANG_BUG


def test_illegal_uncategorized_to_hang_bug(machine):
    with pytest.raises(ValueError):
        machine.transition(1, ActionState.HANG_BUG, "Diagnoser")


def test_illegal_hang_bug_to_normal(machine):
    machine.transition(1, ActionState.SUSPICIOUS, "S-Checker")
    machine.transition(1, ActionState.HANG_BUG, "Diagnoser")
    with pytest.raises(ValueError):
        machine.transition(1, ActionState.NORMAL, "Diagnoser")


def test_illegal_normal_to_suspicious_directly(machine):
    machine.transition(1, ActionState.NORMAL, "S-Checker")
    with pytest.raises(ValueError):
        machine.transition(1, ActionState.SUSPICIOUS, "S-Checker")


def test_hang_bug_is_sticky(machine):
    machine.transition(1, ActionState.SUSPICIOUS, "S-Checker")
    machine.transition(1, ActionState.HANG_BUG, "Diagnoser")
    machine.transition(1, ActionState.HANG_BUG, "Diagnoser")
    assert machine.state(1) is ActionState.HANG_BUG


def test_normal_resets_after_period(machine):
    machine.transition(1, ActionState.NORMAL, "S-Checker")
    machine.note_normal_execution(1)
    machine.note_normal_execution(1)
    assert machine.state(1) is ActionState.NORMAL
    machine.note_normal_execution(1)
    assert machine.state(1) is ActionState.UNCATEGORIZED


def test_reset_counter_restarts_after_renormalization(machine):
    machine.transition(1, ActionState.NORMAL, "S-Checker")
    machine.note_normal_execution(1)
    machine.transition(1, ActionState.UNCATEGORIZED, "S-Checker")
    machine.transition(1, ActionState.NORMAL, "S-Checker")
    machine.note_normal_execution(1)
    machine.note_normal_execution(1)
    assert machine.state(1) is ActionState.NORMAL


def test_note_normal_requires_normal_state(machine):
    with pytest.raises(ValueError):
        machine.note_normal_execution(1)


def test_transition_log_records_history(machine):
    machine.transition(1, ActionState.SUSPICIOUS, "S-Checker", time_ms=10.0)
    machine.transition(1, ActionState.NORMAL, "Diagnoser", time_ms=20.0)
    assert [t.component for t in machine.transitions] == [
        "S-Checker", "Diagnoser"
    ]
    assert machine.transitions[0].time_ms == 10.0


def test_self_transition_to_same_state_is_silent(machine):
    machine.transition(1, ActionState.NORMAL, "S-Checker")
    machine.transition(1, ActionState.NORMAL, "Diagnoser")
    assert len(machine.transitions) == 1


def test_counts(machine):
    machine.register(2)
    machine.transition(1, ActionState.NORMAL, "S-Checker")
    counts = machine.counts()
    assert counts[ActionState.NORMAL] == 1
    assert counts[ActionState.UNCATEGORIZED] == 1


def test_short_labels_match_figure7():
    assert ActionState.UNCATEGORIZED.short == "U"
    assert ActionState.NORMAL.short == "N"
    assert ActionState.SUSPICIOUS.short == "S"
    assert ActionState.HANG_BUG.short == "H"


def test_invalid_reset_period():
    with pytest.raises(ValueError):
        ActionStateMachine(reset_period=0)
