"""Tests for repro.core.trace_analyzer (occurrence-factor attribution)."""

import pytest

from repro.base.frames import Frame, StackTrace
from repro.core.trace_analyzer import TraceAnalyzer


def frame(method, clazz="org.app.Helper"):
    return Frame(clazz=clazz, method=method, file="F.java", line=10)


def trace(t, *frames):
    return StackTrace(time_ms=t, frames=tuple(frames))


HANDLER = frame("onClick", "com.app.MainActivity")
CALLER = frame("loadData", "com.app.Loader")
BLOCKING = frame("query", "android.database.sqlite.SQLiteDatabase")
UI = frame("inflate", "android.view.LayoutInflater")


def test_single_dominant_api_is_root():
    traces = [trace(i, HANDLER, CALLER, BLOCKING) for i in range(9)]
    traces.append(trace(9, HANDLER, CALLER, UI))
    diagnosis = TraceAnalyzer().analyze(traces)
    assert diagnosis.root == BLOCKING
    assert diagnosis.occurrence == pytest.approx(0.9)
    assert diagnosis.is_hang_bug


def test_ui_root_is_not_a_bug():
    traces = [trace(i, HANDLER, CALLER, UI) for i in range(10)]
    diagnosis = TraceAnalyzer().analyze(traces)
    assert diagnosis.root == UI
    assert diagnosis.is_ui
    assert not diagnosis.is_hang_bug


def test_low_occurrence_blames_common_caller():
    """Many different light APIs under one self-developed caller: the
    caller is the root cause (paper §3.4.1)."""
    leaves = [frame(f"op{i}") for i in range(10)]
    traces = [trace(i, HANDLER, CALLER, leaf) for i, leaf in
              enumerate(leaves)]
    diagnosis = TraceAnalyzer(occurrence_threshold=0.5).analyze(traces)
    assert diagnosis.root == CALLER
    assert diagnosis.occurrence == pytest.approx(1.0)


def test_self_developed_classification():
    loop = frame("formatTimeline", "com.app.Formatter")
    traces = [trace(i, HANDLER, CALLER, loop) for i in range(10)]
    diagnosis = TraceAnalyzer(app_package="com.app").analyze(traces)
    assert diagnosis.is_self_developed
    assert diagnosis.is_hang_bug


def test_library_api_is_not_self_developed():
    traces = [trace(i, HANDLER, CALLER, BLOCKING) for i in range(10)]
    diagnosis = TraceAnalyzer(app_package="com.app").analyze(traces)
    assert not diagnosis.is_self_developed


def test_idle_traces_lower_occurrence():
    traces = [trace(i, HANDLER, BLOCKING) for i in range(5)]
    traces += [trace(5 + i) for i in range(5)]
    diagnosis = TraceAnalyzer(occurrence_threshold=0.4).analyze(traces)
    assert diagnosis.root == BLOCKING
    assert diagnosis.occurrence == pytest.approx(0.5)


def test_all_idle_returns_no_root():
    traces = [trace(i) for i in range(5)]
    diagnosis = TraceAnalyzer().analyze(traces)
    assert diagnosis.root is None
    assert not diagnosis.is_hang_bug
    assert diagnosis.trace_count == 5


def test_empty_traces():
    diagnosis = TraceAnalyzer().analyze([])
    assert diagnosis.root is None
    assert diagnosis.occurrence == 0.0


def test_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        TraceAnalyzer(occurrence_threshold=0.0)
    with pytest.raises(ValueError):
        TraceAnalyzer(occurrence_threshold=1.5)


def test_trace_count_reported():
    traces = [trace(i, HANDLER, BLOCKING) for i in range(7)]
    assert TraceAnalyzer().analyze(traces).trace_count == 7


def test_fallback_without_caller_uses_top_leaf():
    """Shallow stacks (no caller frame) fall back to the leaf even
    below the occurrence bar."""
    leaves = [frame(f"op{i}") for i in range(10)]
    traces = [StackTrace(time_ms=i, frames=(leaf,))
              for i, leaf in enumerate(leaves)]
    diagnosis = TraceAnalyzer(occurrence_threshold=0.5).analyze(traces)
    assert diagnosis.root in leaves
