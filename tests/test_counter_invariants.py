"""Cross-event invariants of the counter model.

The 46-event model must stay internally consistent — cache misses
cannot exceed accesses, branch events must track instruction counts,
and so on — across kinds, threads, and random draws.
"""

import pytest

from repro.base.kinds import ApiKind
from repro.base.rng import stream
from repro.sim.counters import CounterModel
from repro.sim.device import LG_V10
from repro.sim.timeline import MAIN_THREAD

NEUTRAL = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0, "mem": 1.0}


@pytest.fixture(params=[ApiKind.BLOCKING, ApiKind.COMPUTE, ApiKind.UI,
                        ApiKind.LIGHT])
def counts(request):
    model = CounterModel(LG_V10)
    rng = stream("invariants", request.param.value)
    return model.segment_counts(
        kind=request.param, thread=MAIN_THREAD, wall_ms=400.0,
        cpu_ms=240.0, pages=800, uarch=NEUTRAL, rng=rng,
    )


def test_misses_do_not_exceed_accesses(counts):
    assert counts["L1-dcache-load-misses"] <= counts["L1-dcache-loads"]
    assert counts["L1-dcache-store-misses"] <= counts["L1-dcache-stores"]
    assert counts["L1-icache-load-misses"] <= counts["L1-icache-loads"]


def test_llc_traffic_below_l1_misses(counts):
    l1_misses = (counts["L1-dcache-load-misses"]
                 + counts["L1-dcache-store-misses"])
    llc_traffic = counts["LLC-loads"] + counts["LLC-stores"]
    assert llc_traffic <= l1_misses * 1.5


def test_branch_family_consistent(counts):
    assert counts["branch-misses"] <= counts["branch-instructions"]
    assert counts["branch-loads"] == pytest.approx(
        counts["branch-instructions"], rel=0.2
    )
    assert counts["raw-branch-mispred"] <= counts["raw-branch-pred"] * 1.2


def test_branches_are_a_fraction_of_instructions(counts):
    assert counts["branch-instructions"] < 0.5 * counts["instructions"]


def test_retired_tracks_instructions(counts):
    assert counts["raw-instruction-retired"] == pytest.approx(
        counts["instructions"], rel=0.1
    )


def test_raw_cycles_tracks_cycles(counts):
    assert counts["raw-cpu-cycles"] == pytest.approx(
        counts["cpu-cycles"], rel=0.1
    )


def test_tlb_misses_far_below_accesses(counts):
    assert counts["dTLB-load-misses"] < 0.05 * counts["dTLB-loads"]
    assert counts["iTLB-load-misses"] < 0.02 * counts["iTLB-loads"]


def test_stalls_below_cycles(counts):
    assert counts["stalled-cycles-frontend"] < counts["cpu-cycles"]


def test_alignment_and_emulation_faults_absent(counts):
    assert counts["alignment-faults"] == 0.0
    assert counts["emulation-faults"] == 0.0


def test_migrations_below_switches(counts):
    assert counts["cpu-migrations"] <= counts["context-switches"]


def test_compute_kind_has_highest_ipc():
    model = CounterModel(LG_V10)
    ipc = {}
    for kind in (ApiKind.BLOCKING, ApiKind.COMPUTE, ApiKind.UI):
        import numpy as np

        rng = stream("ipc", kind.value)
        ratios = []
        for _ in range(40):
            counts = model.segment_counts(
                kind=kind, thread=MAIN_THREAD, wall_ms=300.0, cpu_ms=200.0,
                pages=100, uarch=NEUTRAL, rng=rng,
            )
            ratios.append(counts["instructions"] / counts["cpu-cycles"])
        ipc[kind] = float(np.mean(ratios))
    assert ipc[ApiKind.COMPUTE] > ipc[ApiKind.UI] > ipc[ApiKind.BLOCKING]


def test_dvfs_shared_within_an_execution(device, k9):
    """Cycle counts across segments of one execution share the DVFS
    draw: per-segment cycles/task-clock ratios cluster tightly."""
    import numpy as np

    from repro.sim.engine import ExecutionEngine
    from repro.sim.timeline import MAIN_THREAD as MAIN

    engine = ExecutionEngine(device, seed=6)
    execution = engine.run_action(k9, k9.action("folders"))
    ratios = []
    for segment in execution.timeline.segments(MAIN):
        if segment.counts.get("task-clock", 0) > 0:
            ratios.append(
                segment.counts["cpu-cycles"] / segment.counts["task-clock"]
            )
    assert len(ratios) >= 2
    assert np.std(np.log(ratios)) < 0.15
