"""The crowd backend: ingestion, dedup, publishing, and the sweep.

The acceptance properties: aggregator merge is associative,
commutative, and idempotent for any batch arrival order (shuffled,
duplicated, sharded); the persisted state round-trips and survives
corruption; the Hang Doctor short-circuit skips phase-2 collections
for fleet-known bugs; and the fleet-size sweep is monotone (per
device-round collections never rise with fleet size), strictly below
the isolated baseline at the largest fleet, and byte-identical across
worker counts and repeat runs at fault rate 0.
"""

import random

import pytest

from repro.cli import main
from repro.core.blocking_db import BlockingApiDatabase
from repro.core.hang_doctor import HangDoctor
from repro.core.persistence import report_from_json, report_to_json
from repro.core.report import (
    OCCURRENCE_BUCKETS,
    HangBugReport,
    occurrence_bucket,
)
from repro.core.states import ActionState
from repro.crowd import (
    CrowdAggregator,
    CrowdKnowledge,
    KnownBug,
    ReportBatch,
    aggregator_from_json,
    aggregator_to_json,
    load_aggregator,
)
from repro.detectors.runner import run_detector
from repro.harness.exp_crowd import crowd_sweep
from repro.sim.engine import ExecutionEngine


def make_report(app_name="K9-mail", entries=3, device_tag=0):
    """A small synthetic Hang Bug Report with distinct root causes."""
    report = HangBugReport(app_name)
    for index in range(entries):
        report.record(
            operation=f"org.example.Api{device_tag}.call{index}",
            file=f"Api{device_tag}.java",
            line=10 + index,
            is_self_developed=(index % 2 == 1),
            response_time_ms=900.0 + 50 * index,
            occurrence_factor=0.3 + 0.2 * index,
            device_id=device_tag,
            action=f"action-{index}",
        )
    return report


def make_batches(count=6):
    """Distinct batches from several simulated devices."""
    return [
        ReportBatch.from_report(
            make_report(device_tag=tag), device_id=tag, time_ms=float(tag)
        )
        for tag in range(count)
    ]


# ---------------------------------------------------------------- dedup


def test_ingest_is_idempotent():
    aggregator = CrowdAggregator()
    batch = make_batches(1)[0]
    assert aggregator.ingest(batch) is True
    assert aggregator.ingest(batch) is False
    assert len(aggregator) == 1


def test_merge_commutative_associative_idempotent():
    """The CRDT laws under shuffled and duplicated batch arrivals."""
    batches = make_batches(6)
    parts = []
    rng = random.Random(7)
    for start in range(0, 6, 2):
        part = CrowdAggregator()
        # Each shard sees its slice shuffled plus a duplicated straggler.
        slice_ = batches[start:start + 2] + [batches[0]]
        rng.shuffle(slice_)
        for batch in slice_:
            part.ingest(batch)
        parts.append(part)
    a, b, c = parts
    ab_c = CrowdAggregator.merge([CrowdAggregator.merge([a, b]), c])
    a_bc = CrowdAggregator.merge([a, CrowdAggregator.merge([b, c])])
    cba = CrowdAggregator.merge([c, b, a])
    twice = CrowdAggregator.merge([a, b, c, a, b, c])
    assert ab_c == a_bc == cba == twice
    assert CrowdAggregator.merge([a]) == a
    assert len(CrowdAggregator.merge([])) == 0
    serial = CrowdAggregator()
    for batch in batches:
        serial.ingest(batch)
    assert ab_c == serial
    assert aggregator_to_json(ab_c) == aggregator_to_json(serial)


def test_bug_stats_dedupe_across_devices():
    """The same root cause from many devices folds into one stat."""
    aggregator = CrowdAggregator()
    for device in range(4):
        aggregator.ingest_report(
            make_report(device_tag=0), device_id=device,
            time_ms=float(device),
        )
    stats = aggregator.bug_stats()
    assert len(stats) == 3  # 3 distinct root causes, not 12
    top = stats[0]
    assert top.device_count == 4
    assert top.devices == (0, 1, 2, 3)
    assert top.first_seen_ms == 0.0 and top.last_seen_ms == 3.0
    assert stats == sorted(
        stats, key=lambda s: (-s.hang_count, s.signature)
    )


def test_shard_of_is_stable_partition():
    ids = [batch.batch_id for batch in make_batches(8)]
    shards = [CrowdAggregator.shard_of(batch_id, 3) for batch_id in ids]
    assert shards == [CrowdAggregator.shard_of(i, 3) for i in ids]
    assert all(0 <= shard < 3 for shard in shards)
    with pytest.raises(ValueError):
        CrowdAggregator.shard_of("x", 0)


# ------------------------------------------------------------ signature


def test_root_cause_signature_round_trips_through_json():
    """The signature survives report persistence bit-for-bit."""
    report = make_report()
    restored = report_from_json(report_to_json(report))
    original = [
        entry.root_cause_signature(report.app_name)
        for entry in report.entries()
    ]
    after = [
        entry.root_cause_signature(restored.app_name)
        for entry in restored.entries()
    ]
    assert original == after
    assert all(sig.count("|") == 3 for sig in original)


def test_occurrence_bucket_bounds():
    assert occurrence_bucket(0.0) == 0
    assert occurrence_bucket(1.0) == OCCURRENCE_BUCKETS - 1
    assert occurrence_bucket(-5.0) == 0
    assert occurrence_bucket(5.0) == OCCURRENCE_BUCKETS - 1
    assert occurrence_bucket(0.25) == 2


def test_signature_distinguishes_occurrence_buckets():
    report = HangBugReport("app")
    for factor in (0.05, 0.95):
        report.record(
            operation="a.B.c", file="B.java", line=1,
            is_self_developed=False, response_time_ms=500.0,
            occurrence_factor=factor, action="act",
        )
    entry = report.entries()[0]
    assert entry.root_cause_signature("app").endswith("occ9")


# ------------------------------------------------------------ publishing


def test_knowledge_picks_dominant_bug_per_action():
    aggregator = CrowdAggregator()
    for device in range(3):
        aggregator.ingest_report(
            make_report(device_tag=0), device_id=device,
            time_ms=float(device),
        )
    knowledge = aggregator.knowledge(min_devices=2)
    assert len(knowledge) == 3
    known = knowledge.lookup("K9-mail", "action-0")
    assert known is not None
    assert known.device_count == 3
    assert knowledge.lookup("K9-mail", "no-such-action") is None
    # Thresholds filter: nothing was seen on 4 devices.
    assert len(aggregator.knowledge(min_devices=4)) == 0


def test_publish_database_excludes_self_developed():
    aggregator = CrowdAggregator()
    aggregator.ingest_report(make_report(device_tag=0), device_id=0,
                             time_ms=0.0)
    published = aggregator.publish_database()
    baseline = BlockingApiDatabase.initial()
    added = set(published.names()) - baseline.names()
    # Entries 0 and 2 are APIs; entry 1 is self-developed.
    assert added == {"org.example.Api0.call0", "org.example.Api0.call2"}
    assert published.runtime_discoveries() == sorted(added)
    # Publishing folds into a supplied base without disturbing it.
    base = BlockingApiDatabase({"x.Y.z"})
    merged = aggregator.publish_database(base=base)
    assert "x.Y.z" in merged
    assert base.names() == {"x.Y.z"}


def test_known_bug_root_frame_rebuilds_qualified_name():
    bug = KnownBug(
        app_name="a", action="b", operation="org.pkg.Klass.method",
        file="Klass.java", line=7, is_self_developed=False,
        occurrence=0.5, device_count=1, hang_count=1,
    )
    frame = bug.root_frame()
    assert frame.qualified_name == "org.pkg.Klass.method"
    assert frame.line == 7


# ----------------------------------------------------------- persistence


def test_store_round_trip_is_canonical():
    batches = make_batches(4)
    forward = CrowdAggregator()
    backward = CrowdAggregator()
    for batch in batches:
        forward.ingest(batch)
    for batch in reversed(batches):
        backward.ingest(batch)
    text = aggregator_to_json(forward)
    assert text == aggregator_to_json(backward)
    restored = aggregator_from_json(text)
    assert restored == forward
    assert aggregator_to_json(restored) == text


def test_store_rejects_malformed_payloads():
    from repro.crowd.store import CROWD_SCHEMA_VERSION

    with pytest.raises(ValueError, match="malformed"):
        aggregator_from_json("{not json")
    with pytest.raises(ValueError, match="schema"):
        aggregator_from_json('{"schema": "bogus", "batches": []}')
    with pytest.raises(ValueError, match="batches"):
        aggregator_from_json(
            f'{{"schema": {CROWD_SCHEMA_VERSION!r}, "batches": 3}}'
        )


def test_load_aggregator_never_raises():
    fresh = load_aggregator("garbage ] not json")
    assert len(fresh) == 0
    assert fresh.recovered_from_corruption
    aggregator = CrowdAggregator()
    aggregator.ingest(make_batches(1)[0])
    loaded = load_aggregator(aggregator_to_json(aggregator))
    assert loaded == aggregator
    assert not loaded.recovered_from_corruption


# --------------------------------------------------- device short-circuit


def test_hang_doctor_short_circuits_known_bugs(device, k9):
    """A crowd-synced device skips phase-2 collections for bugs the
    fleet already diagnosed, yet still reports the detection."""
    engine = ExecutionEngine(device, seed=11)
    cold = HangDoctor(k9, device, seed=11)
    session = [action.name for action in k9.actions] * 6
    executions = engine.run_session(k9, session, gap_ms=1000.0)
    cold_run = run_detector(cold, executions)
    assert cold.phase2_collections > 0
    assert cold.kb_short_circuits == 0

    # Publish the cold device's diagnoses, then replay the identical
    # deployment on a warm device.
    aggregator = CrowdAggregator()
    aggregator.ingest_report(cold.report, device_id=0, time_ms=0.0)
    knowledge = aggregator.knowledge()
    assert len(knowledge) > 0
    warm_engine = ExecutionEngine(device, seed=11)
    warm = HangDoctor(k9, device, seed=11, crowd_kb=knowledge)
    warm_run = run_detector(
        warm, warm_engine.run_session(k9, session, gap_ms=1000.0)
    )
    assert warm.kb_short_circuits > 0
    assert warm.phase2_collections < cold.phase2_collections
    assert warm_run.cost.kb_short_circuits == warm.kb_short_circuits
    # The known verdicts land as Hang Bug states and real detections.
    warm_bugs = {d.root.qualified_name for d in warm_run.detections}
    cold_bugs = {d.root.qualified_name for d in cold_run.detections}
    assert warm_bugs == cold_bugs
    known = knowledge.bugs()[0]
    assert warm.state_of(known.action) is ActionState.HANG_BUG


def test_empty_knowledge_changes_nothing(device, k9):
    """crowd_kb with no entries behaves exactly like crowd_kb=None."""
    session = [action.name for action in k9.actions] * 4
    runs = []
    for kb in (None, CrowdKnowledge()):
        engine = ExecutionEngine(device, seed=3)
        doctor = HangDoctor(k9, device, seed=3, crowd_kb=kb)
        run = run_detector(
            doctor, engine.run_session(k9, session, gap_ms=1000.0)
        )
        runs.append((doctor.phase2_collections, len(run.detections)))
    assert runs[0] == runs[1]


# ----------------------------------------------------------------- sweep

SWEEP_KWARGS = dict(seed=0, fleet_sizes=(1, 2, 4), rounds=2,
                    apps=("K9-mail", "AndStatus"), actions_per_round=25)


@pytest.fixture(scope="module")
def small_sweep(device):
    return crowd_sweep(device, workers=1, **SWEEP_KWARGS)


def test_sweep_monotone_and_below_baseline(small_sweep):
    """Acceptance: collections per device-round never rise with fleet
    size, and the largest fleet beats the isolated baseline."""
    per_device = [
        cell.collections_per_device_round for cell in small_sweep.cells
    ]
    assert per_device == sorted(per_device, reverse=True)
    largest = small_sweep.cell(max(small_sweep.fleet_sizes))
    assert largest.phase2_collections < largest.baseline_collections
    assert largest.kb_short_circuits > 0
    assert largest.avoided_fraction > 0.0


def test_sweep_detection_quality_preserved(small_sweep):
    """Short-circuiting saves collections without losing bugs."""
    for cell in small_sweep.cells:
        assert cell.bugs_detected >= cell.baseline_bugs_detected
        assert cell.known_bugs > 0


def test_sweep_parallel_equals_serial(device, small_sweep):
    parallel = crowd_sweep(device, workers=4, **SWEEP_KWARGS)
    assert parallel.render() == small_sweep.render()
    assert parallel.cells == small_sweep.cells


def test_sweep_repeated_runs_deterministic(device, small_sweep):
    again = crowd_sweep(device, workers=1, **SWEEP_KWARGS)
    assert again.render() == small_sweep.render()


def test_sweep_fault_rate_zero_never_draws(small_sweep):
    for cell in small_sweep.cells:
        assert cell.batches_dropped == 0
        assert cell.batches_duplicated == 0
        assert cell.batches_late == 0


def test_sweep_with_upload_faults_is_deterministic(device):
    kwargs = dict(SWEEP_KWARGS, fleet_sizes=(4,), fault_rate=0.4)
    one = crowd_sweep(device, workers=1, **kwargs)
    two = crowd_sweep(device, workers=4, **kwargs)
    assert one.render() == two.render()
    cell = one.cells[0]
    assert (cell.batches_dropped + cell.batches_duplicated
            + cell.batches_late) > 0


def test_sweep_rejects_bad_parameters(device):
    with pytest.raises(ValueError, match="fleet sizes"):
        crowd_sweep(device, fleet_sizes=())
    with pytest.raises(ValueError, match="rounds"):
        crowd_sweep(device, rounds=0)
    with pytest.raises(ValueError, match="fault_rate"):
        crowd_sweep(device, fault_rate=1.5)


# ------------------------------------------------------------------- CLI


def test_cli_crowd_quick_deterministic(capsys):
    assert main(["crowd", "--quick", "--seed", "0"]) == 0
    first = capsys.readouterr().out
    assert main(["crowd", "--quick", "--seed", "0", "--workers", "2"]) == 0
    second = capsys.readouterr().out
    assert first == second
    assert "Crowd sweep" in first
    assert "avoided" in first


def test_table5_accepts_crowd_synced_database(device, k9):
    """The fleet study runs with a crowd-published DB and knowledge."""
    from repro.harness.exp_fleet import table5

    engine = ExecutionEngine(device, seed=11)
    cold = HangDoctor(k9, device, seed=11)
    session = [action.name for action in k9.actions] * 6
    run_detector(cold, engine.run_session(k9, session, gap_ms=1000.0))
    aggregator = CrowdAggregator()
    aggregator.ingest_report(cold.report, device_id=0, time_ms=0.0)
    published = aggregator.publish_database()

    plain = table5(device, seed=0, users=1, actions_per_user=10,
                   corpus_size=22)
    synced = table5(device, seed=0, users=1, actions_per_user=10,
                    corpus_size=22,
                    blocking_names=published.sorted_names(),
                    crowd_kb=aggregator.knowledge())
    # Pre-seeded fleet-published APIs are no longer "new" discoveries.
    assert set(synced.new_blocking_apis).isdisjoint(
        published.runtime_discoveries()
    )
    assert len(synced.new_blocking_apis) <= len(plain.new_blocking_apis)
    assert synced.total_detected >= plain.total_detected


# ---------------------------------------------------- atomic snapshots


def test_save_aggregator_snapshot_round_trips(tmp_path):
    from repro.crowd import save_aggregator

    aggregator = CrowdAggregator()
    for batch in make_batches(3):
        aggregator.ingest(batch)
    path = tmp_path / "crowd.json"
    save_aggregator(path, aggregator)
    restored = load_aggregator(path.read_text())
    assert aggregator_to_json(restored) == aggregator_to_json(aggregator)
    assert list(path.parent.iterdir()) == [path]  # temp file cleaned up


def test_save_aggregator_torn_write_keeps_last_snapshot(tmp_path):
    from repro.crowd import save_aggregator
    from repro.faults import FaultInjector, FaultPlan, TornWriteError

    aggregator = CrowdAggregator()
    aggregator.ingest(make_batches(1)[0])
    path = tmp_path / "crowd.json"
    save_aggregator(path, aggregator)
    good = path.read_text()
    aggregator.ingest(make_batches(2)[1])
    injector = FaultInjector(FaultPlan(torn_write_rate=1.0), seed=0)
    with pytest.raises(TornWriteError):
        save_aggregator(path, aggregator, faults=injector)
    assert path.read_text() == good  # crash kept the complete snapshot


def test_save_aggregator_label_keys_the_torn_verdict(tmp_path):
    """The torn-write seam is keyed, so a path rewritten repeatedly
    must vary its label (the serve snapshot publisher passes the batch
    count) — otherwise one verdict would pin every rewrite forever."""
    from repro.crowd import save_aggregator
    from repro.faults import FaultInjector, FaultPlan, TornWriteError

    aggregator = CrowdAggregator()
    aggregator.ingest(make_batches(1)[0])
    path = tmp_path / "crowd.json"
    injector = FaultInjector(FaultPlan(torn_write_rate=0.5), seed=3)
    verdicts = []
    for count in range(20):
        try:
            save_aggregator(path, aggregator, faults=injector,
                            label=f"snapshot:{count}")
            verdicts.append(False)
        except TornWriteError:
            verdicts.append(True)
    assert True in verdicts and False in verdicts
    # Every completed write left a loadable, complete snapshot.
    restored = load_aggregator(path.read_text())
    assert not restored.recovered_from_corruption
    assert aggregator_to_json(restored) == aggregator_to_json(aggregator)


def test_wal_and_snapshot_torn_writes_round_trip_to_consistency(tmp_path):
    """The store <-> serve-WAL interplay: whatever combination of torn
    snapshot publishes and torn journal appends, recovery lands on
    every acknowledged batch exactly once."""
    from repro.faults import FaultInjector, FaultPlan, TornWriteError
    from repro.serve import ServiceState

    batches = make_batches(6)
    state = ServiceState(tmp_path / "state")
    state.recover()
    state.faults = FaultInjector(FaultPlan(torn_write_rate=0.4), seed=8)
    acked = []
    for batch in batches:
        try:
            state.log([batch])
        except TornWriteError:
            continue  # never acked; a live client would retry
        state.ingest(batch)
        acked.append(batch)
        try:
            state.publish()
        except TornWriteError:
            pass  # old snapshot + full journal still cover everything
    state.close()
    assert acked and len(acked) < len(batches)  # both verdicts fired
    recovered = ServiceState(tmp_path / "state").recover()
    expected = CrowdAggregator()
    for batch in acked:
        expected.ingest(batch)
    assert aggregator_to_json(recovered.aggregator) == \
        aggregator_to_json(expected)
    recovered.close()
