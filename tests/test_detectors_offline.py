"""Tests for repro.detectors.offline (the PerfChecker-style scanner)."""

import pytest

from repro.apps.catalog import get_app
from repro.core.blocking_db import BlockingApiDatabase
from repro.detectors.offline import OfflineScanner


def test_finds_known_blocking_calls():
    scanner = OfflineScanner()
    detections = scanner.scan_app(get_app("StickerCamera"))
    names = {d.api_name for d in detections}
    assert "android.hardware.Camera.open" in names
    assert "android.graphics.BitmapFactory.decodeFile" in names


def test_misses_unknown_apis():
    scanner = OfflineScanner()
    k9 = get_app("K9-mail")
    names = {d.api_name for d in scanner.scan_app(k9)}
    assert "org.htmlcleaner.HtmlCleaner.clean" not in names


def test_misses_self_developed_loops():
    scanner = OfflineScanner()
    qksms = get_app("QKSMS")
    assert len(scanner.missed_bugs(qksms)) == 3


def test_bytecode_scanner_sees_nested_known_apis():
    scanner = OfflineScanner(analyze_libraries=True)
    owntracks = get_app("OwnTracks")
    assert scanner.missed_bugs(owntracks) == []


def test_source_scanner_misses_nested_known_apis():
    """The paper's intro example: SageMath's cupboard-wrapped database
    insert is invisible to a source-only scanner."""
    source_only = OfflineScanner(analyze_libraries=False)
    sage = get_app("Sage Math")
    missed = source_only.missed_bugs(sage)
    assert any(
        op.api.entry_name == "get" for op in missed
    )
    bytecode = OfflineScanner(analyze_libraries=True)
    assert len(bytecode.missed_bugs(sage)) < len(missed)


def test_ignores_worker_thread_calls():
    scanner = OfflineScanner()
    fixed = get_app("StickerCamera").fixed()
    assert scanner.scan_app(fixed) == []


def test_deduplicates_sites():
    scanner = OfflineScanner()
    app = get_app("Sage Math")
    detections = scanner.scan_app(app)
    sites = [d.site_id for d in detections]
    assert len(sites) == len(set(sites))


def test_custom_database():
    db = BlockingApiDatabase({"org.htmlcleaner.HtmlCleaner.clean"})
    scanner = OfflineScanner(blocking_db=db)
    k9 = get_app("K9-mail")
    names = {d.api_name for d in scanner.scan_app(k9)}
    assert "org.htmlcleaner.HtmlCleaner.clean" in names


def test_runtime_discoveries_improve_offline_detection():
    """The paper's feedback loop: once Hang Doctor adds an unknown API
    to the database, the offline scanner warns other apps too."""
    db = BlockingApiDatabase.initial()
    scanner = OfflineScanner(blocking_db=db)
    k9 = get_app("K9-mail")
    before = len(scanner.missed_bugs(k9))
    db.add("org.htmlcleaner.HtmlCleaner.clean")
    after = len(scanner.missed_bugs(k9))
    assert after == before - 1


def test_detected_sites_subset_of_all_sites():
    scanner = OfflineScanner()
    app = get_app("AndStatus")
    all_sites = {
        op.site_id for action in app.actions for op in action.operations()
    }
    assert scanner.detected_sites(app) <= all_sites
