"""Tests for repro.detectors.runner and the cost/outcome plumbing."""

import pytest

from repro.core.hang_doctor import HangDoctor
from repro.detectors.base import ActionOutcome, MonitoringCost
from repro.detectors.runner import run_detector, run_detectors
from repro.detectors.timeout import TimeoutDetector


def test_monitoring_cost_add():
    total = MonitoringCost()
    total.add(MonitoringCost(rt_events=2, trace_samples=10))
    total.add(MonitoringCost(rt_events=3, util_samples=5))
    assert total.rt_events == 5
    assert total.trace_samples == 10
    assert total.util_samples == 5


def test_action_outcome_traced_property():
    outcome = ActionOutcome()
    assert not outcome.traced
    outcome.trace_episodes.append((0.0, 100.0))
    assert outcome.traced


def test_run_detector_aligns_outcomes(engine, k9):
    executions = engine.run_session(k9, ["folders", "inbox"], gap_ms=500.0)
    run = run_detector(TimeoutDetector(k9), executions)
    assert len(run.outcomes) == len(run.executions) == 2


def test_run_detector_aggregates_cost(engine, k9):
    executions = engine.run_session(k9, ["folders"] * 3, gap_ms=500.0)
    run = run_detector(TimeoutDetector(k9), executions)
    assert run.cost.rt_events == sum(
        o.cost.rt_events for o in run.outcomes
    )


def test_run_detectors_same_executions(device, engine, k9):
    executions = engine.run_session(k9, ["open_email"] * 5, gap_ms=500.0)
    detectors = [TimeoutDetector(k9), HangDoctor(k9, device)]
    runs = run_detectors(detectors, executions)
    assert set(runs) == {"TI", "HD"}
    assert runs["TI"].executions is not None
    assert len(runs["TI"].executions) == len(runs["HD"].executions)


def test_ti_has_no_false_negatives(engine, k9):
    """TI traces every hang, so its traced-hang FN count is zero —
    the paper uses it as the normalization base for that reason."""
    executions = engine.run_session(
        k9, ["open_email", "folders"] * 10, gap_ms=500.0
    )
    run = run_detector(TimeoutDetector(k9), executions)
    assert run.confusion().fn == 0


def test_overhead_positive(engine, k9):
    executions = engine.run_session(k9, ["open_email"] * 5, gap_ms=500.0)
    run = run_detector(TimeoutDetector(k9), executions)
    result = run.overhead()
    assert result.cpu_percent > 0
    assert result.memory_percent > 0
    assert result.average_percent == pytest.approx(
        (result.cpu_percent + result.memory_percent) / 2
    )


def test_detections_flattened(engine, k9):
    executions = engine.run_session(k9, ["folders"] * 5, gap_ms=500.0)
    run = run_detector(TimeoutDetector(k9), executions)
    assert len(run.detections) == sum(
        len(o.detections) for o in run.outcomes
    )


def test_traced_count(engine, k9):
    executions = engine.run_session(k9, ["folders"] * 5, gap_ms=500.0)
    run = run_detector(TimeoutDetector(k9), executions)
    assert run.traced_count == sum(1 for o in run.outcomes if o.traced)
