"""Tests for repro.detectors.timeout (the TI baseline)."""

import pytest

from repro.detectors.timeout import TimeoutDetector
from tests.helpers import run_until


def test_no_detection_below_timeout(engine, k9):
    detector = TimeoutDetector(k9, timeout_ms=100.0)
    execution = run_until(
        engine, k9, "open_email", lambda ex: not ex.has_soft_hang
    )
    outcome = detector.process(execution)
    assert not outcome.detections
    assert not outcome.trace_episodes


def test_every_hang_is_traced(engine, k9):
    detector = TimeoutDetector(k9, timeout_ms=100.0)
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    outcome = detector.process(execution)
    assert len(outcome.trace_episodes) == len(execution.hang_events())


def test_ui_hang_reported_as_ui_root(engine, k9):
    detector = TimeoutDetector(k9, timeout_ms=100.0)
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    outcome = detector.process(execution)
    assert outcome.detections
    assert all(d.root_is_ui for d in outcome.detections)


def test_bug_hang_attributed_to_bug(engine, k9):
    detector = TimeoutDetector(k9, timeout_ms=100.0)
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    outcome = detector.process(execution)
    roots = [d.root_name for d in outcome.detections]
    assert "org.htmlcleaner.HtmlCleaner.clean" in roots


def test_five_second_timeout_misses_soft_hangs(engine, k9):
    anr = TimeoutDetector(k9, timeout_ms=5000.0)
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    assert not anr.process(execution).detections


def test_name_reflects_timeout(k9):
    assert TimeoutDetector(k9).name == "TI"
    assert TimeoutDetector(k9, timeout_ms=500.0).name == "TI-500ms"


def test_cost_scales_with_hang_length(engine, k9):
    detector = TimeoutDetector(k9, timeout_ms=100.0)
    short = run_until(
        engine, k9, "folders",
        lambda ex: ex.has_soft_hang and ex.response_time_ms < 400,
    )
    long = run_until(
        engine, k9, "open_email",
        lambda ex: ex.bug_caused_hang() and ex.response_time_ms > 900,
    )
    cost_short = detector.process(short).cost.trace_samples
    cost_long = detector.process(long).cost.trace_samples
    assert cost_long > 2 * cost_short


def test_detection_metadata(engine, k9):
    detector = TimeoutDetector(k9, timeout_ms=100.0)
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    detection = detector.process(execution).detections[0]
    assert detection.app_name == "K9-mail"
    assert detection.action_name == "folders"
    assert detection.response_time_ms > 100.0
    assert detection.detector == "TI"
