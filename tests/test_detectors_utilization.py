"""Tests for repro.detectors.utilization (UT/UT+TI baselines)."""

import pytest

from repro.detectors.utilization import (
    CPU_METRIC,
    MEM_METRIC,
    UtilizationDetector,
    UtilizationThresholds,
    fit_thresholds,
    window_metrics,
)
from tests.helpers import run_until


LOW = UtilizationThresholds(values={CPU_METRIC: 0.15, MEM_METRIC: 20.0})
HIGH = UtilizationThresholds(values={CPU_METRIC: 0.9, MEM_METRIC: 5000.0})


def test_window_metrics_bounds(engine, k9):
    execution = engine.run_action(k9, k9.action("folders"))
    metrics = window_metrics(execution, execution.start_ms,
                             execution.start_ms + 100.0)
    assert 0.0 <= metrics[CPU_METRIC] <= 1.0
    assert metrics[MEM_METRIC] >= 0.0


def test_fit_thresholds_low_is_minimum():
    windows = [
        {CPU_METRIC: 0.4, MEM_METRIC: 100.0},
        {CPU_METRIC: 0.8, MEM_METRIC: 300.0},
    ]
    low = fit_thresholds(windows, "low")
    assert low.values[CPU_METRIC] == 0.4
    assert low.values[MEM_METRIC] == 100.0


def test_fit_thresholds_high_is_90_percent_of_peak():
    windows = [
        {CPU_METRIC: 0.4, MEM_METRIC: 100.0},
        {CPU_METRIC: 0.8, MEM_METRIC: 300.0},
    ]
    high = fit_thresholds(windows, "high")
    assert high.values[CPU_METRIC] == pytest.approx(0.72)
    assert high.values[MEM_METRIC] == pytest.approx(270.0)


def test_fit_thresholds_validation():
    with pytest.raises(ValueError):
        fit_thresholds([], "low")
    with pytest.raises(ValueError):
        fit_thresholds([{CPU_METRIC: 1, MEM_METRIC: 1}], "medium")


def test_crossed_any_metric():
    thresholds = UtilizationThresholds(values={CPU_METRIC: 0.5,
                                               MEM_METRIC: 100.0})
    assert thresholds.crossed({CPU_METRIC: 0.6, MEM_METRIC: 0.0})
    assert thresholds.crossed({CPU_METRIC: 0.0, MEM_METRIC: 150.0})
    assert not thresholds.crossed({CPU_METRIC: 0.5, MEM_METRIC: 100.0})


def test_low_threshold_fires_on_ui_work(engine, k9):
    detector = UtilizationDetector(k9, LOW, label="UTL")
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    outcome = detector.process(execution)
    assert outcome.trace_episodes  # false positives


def test_low_threshold_retriggers_per_window(engine, k9):
    detector = UtilizationDetector(k9, LOW, label="UTL")
    execution = run_until(
        engine, k9, "open_email",
        lambda ex: ex.bug_caused_hang() and ex.response_time_ms > 900,
    )
    outcome = detector.process(execution)
    assert len(outcome.trace_episodes) >= 5


def test_high_threshold_quiet_on_ui_work(engine, k9):
    detector = UtilizationDetector(k9, HIGH, label="UTH")
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    outcome = detector.process(execution)
    assert not outcome.trace_episodes


def test_hang_gated_needs_both_conditions(engine, k9):
    detector = UtilizationDetector(k9, HIGH, combine_timeout=True,
                                   label="UTH+TI")
    execution = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    outcome = detector.process(execution)
    # High threshold not crossed: no trace despite the hang.
    assert not outcome.trace_episodes
    # But utilization was sampled during the hang (cost).
    assert outcome.cost.util_samples >= 0


def test_hang_gated_no_sampling_without_hang(engine, k9):
    detector = UtilizationDetector(k9, LOW, combine_timeout=True,
                                   label="UTL+TI")
    execution = run_until(
        engine, k9, "open_email", lambda ex: not ex.has_soft_hang
    )
    outcome = detector.process(execution)
    assert outcome.cost.util_samples == 0


def test_hang_gated_traces_bug_hang(engine, k9):
    detector = UtilizationDetector(k9, LOW, combine_timeout=True,
                                   label="UTL+TI")
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    outcome = detector.process(execution)
    assert outcome.trace_episodes
    assert outcome.detections


def test_periodic_accounts_idle_samples(engine, k9):
    detector = UtilizationDetector(k9, HIGH, label="UTH")
    executions = engine.run_session(k9, ["folders", "folders"],
                                    gap_ms=2000.0)
    detector.process(executions[0])
    outcome = detector.process(executions[1])
    assert outcome.cost.util_samples > 10  # includes the idle gap


def test_reset_clears_idle_tracking(engine, k9):
    detector = UtilizationDetector(k9, HIGH, label="UTH")
    executions = engine.run_session(k9, ["folders", "folders"],
                                    gap_ms=2000.0)
    detector.process(executions[0])
    detector.reset()
    outcome = detector.process(executions[1])
    # After reset there is no "previous end": no idle back-charge.
    span = executions[1].timeline.end_ms - executions[1].start_ms
    assert outcome.cost.util_samples <= span / 100.0 + 1
