"""Tests for the BlockCanary-style watchdog baseline."""

import pytest

from repro.detectors.runner import run_detector
from repro.detectors.watchdog import WatchdogDetector
from repro.sim.engine import ExecutionEngine
from tests.helpers import run_until


def test_validation():
    with pytest.raises(ValueError):
        WatchdogDetector(None, block_threshold_ms=0)
    with pytest.raises(ValueError):
        WatchdogDetector(None, interval_ms=-1)


def test_name_includes_threshold(k9):
    assert WatchdogDetector(k9, block_threshold_ms=500.0).name == "WD-500ms"


def test_misses_hangs_shorter_than_threshold(engine, k9):
    detector = WatchdogDetector(k9, block_threshold_ms=1000.0,
                                interval_ms=1000.0)
    execution = run_until(
        engine, k9, "folders",
        lambda ex: ex.has_soft_hang and ex.response_time_ms < 600,
    )
    outcome = detector.process(execution)
    assert not outcome.detections


def test_catches_long_hangs_eventually(engine, k9):
    detector = WatchdogDetector(k9, block_threshold_ms=300.0,
                                interval_ms=150.0)
    detections = []
    for _ in range(40):
        execution = run_until(
            engine, k9, "open_email",
            lambda ex: ex.response_time_ms > 900,
        )
        detector.reset()
        detections.extend(detector.process(execution).detections)
        if detections:
            break
    assert detections
    assert detections[0].root is not None


def test_sampling_misses_even_long_hangs_sometimes(device, k9):
    """With a sparse ping schedule, some qualifying hangs slip through
    — the structural weakness TI does not have."""
    engine = ExecutionEngine(device, seed=9)
    detector = WatchdogDetector(k9, block_threshold_ms=300.0,
                                interval_ms=2000.0)
    hangs = 0
    detected = 0
    executions = engine.run_session(k9, ["open_email"] * 40, gap_ms=700.0)
    for execution in executions:
        qualifying = any(
            e.response_time_ms > 600 for e in execution.events
        )
        outcome = detector.process(execution)
        if qualifying:
            hangs += 1
            detected += bool(outcome.detections)
    assert hangs > 5
    assert 0 < detected < hangs


def test_single_dump_attribution_is_all_or_nothing(engine, k9):
    detector = WatchdogDetector(k9, block_threshold_ms=200.0,
                                interval_ms=100.0)
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.response_time_ms > 900
    )
    outcome = detector.process(execution)
    for detection in outcome.detections:
        assert detection.occurrence in (0.0, 1.0)  # one-sample factor


def test_cost_is_one_trace_per_firing(engine, k9):
    detector = WatchdogDetector(k9, block_threshold_ms=200.0,
                                interval_ms=100.0)
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.response_time_ms > 900
    )
    outcome = detector.process(execution)
    assert outcome.cost.trace_samples == len(outcome.detections)


def test_watchdog_weaker_than_ti(device, k9):
    """Head-to-head on identical sessions: the watchdog traces fewer
    bug hangs than Looper-instrumented TI at the same threshold."""
    from repro.detectors.timeout import TimeoutDetector

    from repro.apps.catalog import get_app

    # Short (~300 ms) hangs: QKSMS's compute bugs slip between pings.
    qksms = get_app("QKSMS")
    engine = ExecutionEngine(device, seed=4)
    executions = engine.run_session(
        qksms, ["open_conversation", "refresh_inbox"] * 20, gap_ms=900.0
    )
    ti = run_detector(TimeoutDetector(qksms, timeout_ms=100.0), executions)
    wd = run_detector(
        WatchdogDetector(qksms, block_threshold_ms=100.0,
                         interval_ms=500.0),
        executions,
    )
    assert wd.confusion().tp < ti.confusion().tp
    assert wd.confusion().fn > 0
