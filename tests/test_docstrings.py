"""Documentation quality gate: every public item has a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-exports are documented at their origin
        if not inspect.getdoc(item):
            missing.append(name)
        if inspect.isclass(item):
            for member_name, member in vars(item).items():
                if member_name.startswith("_"):
                    continue
                if not (inspect.isfunction(member)
                        or isinstance(member, property)):
                    continue
                target = member.fget if isinstance(member, property) \
                    else member
                if target is not None and not inspect.getdoc(target):
                    missing.append(f"{name}.{member_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"
