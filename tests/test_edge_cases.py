"""Remaining edge-case coverage across modules."""

import pytest

from repro.core.persistence import detection_to_record
from repro.detectors.base import Detection
from repro.harness.exp_fleet import Table6Result, Table6Row
from repro.harness.tables import render_table
from repro.sim.device import NEXUS_5
from repro.sim.pmu import PmuSampler
from repro.sim.timeline import MAIN_THREAD, Segment, Timeline


def test_detection_record_with_no_root():
    detection = Detection(
        detector="T", app_name="A", action_name="a", time_ms=0.0,
        response_time_ms=150.0, root=None,
    )
    record = detection_to_record(detection)
    assert record["operation"] is None
    assert record["file"] is None
    assert record["line"] is None


def test_table6_render_reports_undetected():
    result = Table6Result(
        rows=[Table6Row(app_name="X", new_bugs=1,
                        by_event={"context-switches": 0,
                                  "task-clock": 0, "page-faults": 0})],
        events=("context-switches", "task-clock", "page-faults"),
        undetected=["X/action:site"],
    )
    text = result.render()
    assert "not recognized" in text
    assert "X/action:site" in text


def test_render_table_handles_mixed_types():
    text = render_table(("a", "b"), [(1, "x"), (2.5, None)])
    assert "None" in text
    assert "2.5" in text


def test_render_table_zero_float():
    assert "0" in render_table(("v",), [(0.0,)])


def test_pmu_multiplexing_noise_grows_with_pressure():
    from repro.sim.counters import ALL_EVENTS, PMU_EVENTS

    timeline = Timeline()
    timeline.add(Segment(
        thread=MAIN_THREAD, start_ms=0, end_ms=100,
        counts={event: 1000.0 for event in ALL_EVENTS},
    ))
    # Nexus 5 has 4 registers: higher multiplexing factor than LG V10.
    tight = PmuSampler(NEXUS_5, ALL_EVENTS, seed=1)
    assert tight.multiplex_factor == pytest.approx(
        len(PMU_EVENTS) / NEXUS_5.pmu_registers
    )
    readings = [
        tight.read(timeline, MAIN_THREAD, "instructions")
        for _ in range(30)
    ]
    import numpy as np

    assert np.std(readings) > 0


def test_timeline_segments_all_threads_sorted():
    timeline = Timeline()
    timeline.add(Segment(thread="b", start_ms=10, end_ms=20))
    timeline.add(Segment(thread="a", start_ms=5, end_ms=15))
    merged = timeline.segments()
    starts = [segment.start_ms for segment in merged]
    assert starts == sorted(starts)


def test_monitoring_cost_defaults_zero():
    from repro.detectors.base import MonitoringCost

    cost = MonitoringCost()
    assert cost.rt_events == 0
    assert cost.trace_samples == 0


def test_state_short_labels_unique():
    from repro.core.states import ActionState

    labels = [state.short for state in ActionState]
    assert len(labels) == len(set(labels))


def test_corpus_generated_app_commit_is_hexish():
    from repro.apps.corpus import generate_clean_app

    app = generate_clean_app(3, seed=0)
    assert len(app.commit) == 7
    assert all(c in "0123456789abcdef" for c in app.commit)


def test_session_generator_weights_stable_per_app(k9, andstatus):
    from repro.apps.sessions import SessionGenerator

    generator = SessionGenerator(seed=1)
    first = generator.action_weights(k9)
    second = generator.action_weights(k9)
    assert (first == second).all()
    other = generator.action_weights(andstatus)
    assert len(other) == len(andstatus.actions)


def test_offline_detection_fields(k9):
    from repro.detectors.offline import OfflineScanner

    scanner = OfflineScanner()
    sticker_app = __import__(
        "repro.apps.catalog", fromlist=["get_app"]
    ).get_app("StickerCamera")
    detection = scanner.scan_app(sticker_app)[0]
    assert detection.app_name == "StickerCamera"
    assert ":" in detection.site_id


def test_watchdog_schedule_survives_session_gaps(device, k9):
    from repro.detectors.watchdog import WatchdogDetector
    from repro.sim.engine import ExecutionEngine

    engine = ExecutionEngine(device, seed=2)
    detector = WatchdogDetector(k9, block_threshold_ms=100.0,
                                interval_ms=300.0)
    executions = engine.run_session(k9, ["folders"] * 3, gap_ms=5000.0)
    for execution in executions:
        detector.process(execution)
    # The next ping is always in the future relative to processed work.
    assert detector._next_ping_ms >= executions[-1].start_ms
