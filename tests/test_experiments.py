"""Light-weight end-to-end checks of every paper experiment.

Full-scale regenerations live in ``benchmarks/``; these tests run each
experiment at reduced scale and assert the paper's *qualitative*
claims (who wins, what gets detected, how states move).
"""

import pytest

from repro.harness import exp_casestudy, exp_filter, exp_fleet, exp_motivation


@pytest.fixture(scope="module")
def table2_result(device):
    return exp_motivation.table2(device, seed=5, executions_per_action=10)


def test_figure1_fix_halves_response_time(device):
    result = exp_motivation.figure1(device, seed=5, runs=15)
    assert result.buggy_response_ms == pytest.approx(423.0, rel=0.1)
    assert result.fixed_response_ms == pytest.approx(160.0, rel=0.15)
    assert result.buggy_breakdown[0][0] == "android.hardware.Camera.open"


def test_table2_100ms_catches_all_bugs(table2_result):
    totals = table2_result.totals()
    assert totals[100.0][0] == table2_result.total_bugs() == 19


def test_table2_5s_misses_everything(table2_result):
    totals = table2_result.totals()
    assert totals[5000.0] == (0, 0)


def test_table2_false_positives_grow_as_timeout_shrinks(table2_result):
    totals = table2_result.totals()
    fps = [totals[t][1] for t in (5000.0, 1000.0, 500.0, 100.0)]
    assert fps[0] == fps[1] == 0
    assert fps[2] < fps[3]
    assert fps[3] >= 20


def test_table3_difference_beats_main_only(device):
    result = exp_filter.table3(device, seed=7, runs_per_case=5)
    assert result.top_average("diff") > result.top_average("main")
    assert 3.0 < result.improvement_percent() < 40.0


def test_table3_top_events_are_kernel_events(device):
    from repro.sim.counters import KERNEL_EVENTS

    result = exp_filter.table3(device, seed=7, runs_per_case=5)
    top5 = [event for event, _ in result.diff_ranking[:5]]
    assert all(event in KERNEL_EVENTS for event in top5)


def test_table4_top5_family_stable(device):
    result = exp_filter.table4(device, seed=7, runs_per_case=5)
    kernel = {"context-switches", "task-clock", "cpu-clock",
              "page-faults", "minor-faults", "cpu-migrations"}
    for fraction in result.rankings:
        top = set(result.top_events(fraction, 5))
        assert len(top & kernel) >= 4


def test_figure4_filter_performance(device):
    result = exp_filter.figure4(device, seed=7, runs_per_case=5)
    assert result.recall > 0.9
    assert result.prune_rate > 0.5
    assert result.accuracy > 0.8
    for event, (bug_rate, ui_rate) in result.exceedance.items():
        assert bug_rate > ui_rate, event


def test_figure5_early_windows_look_buggy(device):
    result = exp_filter.figure5(device, seed=7)
    assert result.ui_early_positive > result.ui_total_positive
    bug_main = sum(m for _, m, _ in result.bug_series)
    bug_render = sum(r for _, _, r in result.bug_series)
    assert bug_main > bug_render


def test_figure6_k9_walkthrough(device):
    result = exp_casestudy.figure6(device, seed=3)
    assert result.root_operation == "org.htmlcleaner.HtmlCleaner.clean"
    assert result.occurrence_factor > 0.8
    assert result.diagnoser_response_ms > 500.0
    assert result.traces_collected > 20
    assert "HtmlSanitizer" in result.sample_trace


def test_figure7_folders_never_traced(device):
    result = exp_casestudy.figure7(device, seed=1)
    assert result.traces_for("folders") == 0
    assert result.final_state("folders") == "N"


def test_figure7_inbox_roundtrip(device):
    result = exp_casestudy.figure7(device, seed=1)
    assert result.traces_for("inbox") == 1
    assert result.final_state("inbox") == "N"


def test_table6_all_validation_bugs_recognized(device):
    result = exp_fleet.table6(device, seed=11, runs=12)
    assert result.total_bugs == 23
    assert result.undetected == []
    totals = result.totals()
    assert all(count > 8 for count in totals.values())


def test_table5_small_fleet(device):
    result = exp_fleet.table5(
        device, seed=2, users=2, actions_per_user=40, corpus_size=30
    )
    assert result.apps_tested == 30
    assert result.total_detected >= 25
    assert 0.55 < result.total_missed_offline / result.total_detected < 0.8
    assert result.clean_apps_flagged == 0
    assert "HtmlCleaner.clean" in " ".join(result.new_blocking_apis)
