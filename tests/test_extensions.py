"""Tests for the paper-sketched extensions: network monitoring
(footnote 2), Spearman correlation (future work), and the background
adaptation loop (§3.3.1)."""

import pytest

from repro.analysis.correlation import CounterSample, correlate, spearman
from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog_helpers import action, op
from repro.core.adaptation import BackgroundCollector
from repro.core.config import HangDoctorConfig
from repro.core.schecker import SChecker
from repro.sim.engine import ExecutionEngine, NETWORK_BYTES_EVENT
from repro.sim.timeline import MAIN_THREAD
from tests.helpers import run_until


def network_app():
    fetch = action(
        "fetch_feed", "onClick",
        op(apis.HTTP_EXECUTE, "downloadFeed", "FeedService.java"),
        op(apis.SET_TEXT, "showFeed", "FeedActivity.java"),
    )
    return AppSpec(name="NetApp", package="com.netapp", category="News",
                   downloads=10, commit="abc", actions=(fetch,))


# --- network extension ------------------------------------------------------


def test_network_bytes_recorded_on_main_thread(device):
    app = network_app()
    engine = ExecutionEngine(device, seed=3)
    execution = run_until(engine, app, "fetch_feed",
                          lambda ex: ex.bug_caused_hang())
    total = execution.timeline.total(
        MAIN_THREAD, NETWORK_BYTES_EVENT,
        execution.start_ms, execution.end_ms,
    )
    assert total > 10_000


def test_non_network_apps_have_zero_network_bytes(device, k9):
    engine = ExecutionEngine(device, seed=3)
    execution = engine.run_action(k9, k9.action("open_email"))
    assert execution.timeline.total(MAIN_THREAD, NETWORK_BYTES_EVENT) == 0.0


def test_network_condition_fires(device):
    config = HangDoctorConfig(network_threshold_bytes=1000.0)
    schecker = SChecker(config, device)
    app = network_app()
    engine = ExecutionEngine(device, seed=3)
    execution = run_until(engine, app, "fetch_feed",
                          lambda ex: ex.bug_caused_hang())
    check = schecker.check(execution)
    assert check.fired[NETWORK_BYTES_EVENT]
    assert check.symptomatic


def test_network_condition_disabled_by_default(device, k9):
    config = HangDoctorConfig()
    schecker = SChecker(config, device)
    engine = ExecutionEngine(device, seed=3)
    execution = run_until(engine, k9, "folders",
                          lambda ex: ex.has_soft_hang)
    check = schecker.check(execution)
    assert NETWORK_BYTES_EVENT not in check.fired


def test_network_condition_quiet_on_local_work(device, k9):
    config = HangDoctorConfig(network_threshold_bytes=1000.0)
    schecker = SChecker(config, device)
    engine = ExecutionEngine(device, seed=3)
    execution = run_until(engine, k9, "folders",
                          lambda ex: ex.has_soft_hang)
    check = schecker.check(execution)
    assert not check.fired[NETWORK_BYTES_EVENT]


def test_network_bytes_validation():
    with pytest.raises(ValueError):
        apis.blocking_api("x", "a.B", mean_ms=200.0, network_bytes=-1)


# --- spearman ----------------------------------------------------------------


def test_spearman_monotone_nonlinear_is_perfect():
    x = [1.0, 2.0, 3.0, 4.0, 5.0]
    y = [v**3 for v in x]
    assert spearman(x, y) == pytest.approx(1.0)


def test_spearman_handles_ties():
    assert -1.0 <= spearman([1, 1, 2, 2], [4, 3, 2, 1]) <= 0.0


def test_spearman_length_check():
    with pytest.raises(ValueError):
        spearman([1], [1, 2])


def test_correlate_spearman_method():
    samples = [
        CounterSample(values={"e": float(v)}, is_hang_bug=v > 5)
        for v in range(10)
    ]
    linear = correlate(samples, events=("e",), method="pearson")
    ranked = correlate(samples, events=("e",), method="spearman")
    assert ranked["e"] > 0.8
    assert linear["e"] > 0.8


def test_correlate_unknown_method():
    samples = [
        CounterSample(values={"e": 1.0}, is_hang_bug=True),
        CounterSample(values={"e": 0.0}, is_hang_bug=False),
    ]
    with pytest.raises(ValueError):
        correlate(samples, events=("e",), method="kendall")


# --- background collector -----------------------------------------------------


def test_background_collector_samples_periodically(device, k9):
    config = HangDoctorConfig()
    collector = BackgroundCollector(device, config, app_package=k9.package,
                                    period=5, batch_size=100)
    engine = ExecutionEngine(device, seed=3)
    for _ in range(40):
        execution = engine.run_action(k9, k9.action("folders"))
        collector.observe(execution)
    # Every 5th execution that hung contributed a sample.
    assert 4 <= len(collector.samples) <= 8


def test_background_samples_are_labelled_by_traces(device, k9):
    config = HangDoctorConfig()
    collector = BackgroundCollector(device, config, app_package=k9.package,
                                    period=1, batch_size=1000)
    engine = ExecutionEngine(device, seed=3)
    for _ in range(30):
        collector.observe(engine.run_action(k9, k9.action("open_email")))
        collector.observe(engine.run_action(k9, k9.action("folders")))
    labels = {s.is_hang_bug for s in collector.samples}
    assert labels == {True, False}


def test_background_adaptation_fixes_broken_threshold(device, k9):
    """Start with an absurd threshold set; the collector's adaptation
    pass repairs it from its own observations."""
    config = HangDoctorConfig(
        filter_thresholds={"context-switches": 1e9, "task-clock": 1e18,
                           "page-faults": 1e9}
    )
    collector = BackgroundCollector(device, config, app_package=k9.package,
                                    period=1, batch_size=16)
    engine = ExecutionEngine(device, seed=3)
    adapted = None
    for _ in range(200):
        for name in ("open_email", "folders"):
            result = collector.observe(
                engine.run_action(k9, k9.action(name))
            )
            if result is not None:
                adapted = result
        if adapted:
            break
    assert adapted is not None
    assert adapted.mode in ("light", "heavy")
    fn_after, _ = adapted.errors_after
    assert fn_after < adapted.errors_before[0]
    # The shipped config was updated in place.
    assert config.filter_thresholds == adapted.thresholds


def test_background_collector_period_validation(device):
    with pytest.raises(ValueError):
        BackgroundCollector(device, HangDoctorConfig(), period=0)
