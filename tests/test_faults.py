"""The fault-injection layer and the runtime's graceful degradation.

The contract under test: a :class:`FaultPlan` with all rates zero is a
perfect no-op (byte-identical behavior to no fault layer at all), a
nonzero plan injects a deterministic, seed-reproducible fault
sequence, and no injected fault ever raises out of
``HangDoctor.process`` — every failure is absorbed as recorded
degradation.
"""

import pytest

from repro.base.frames import Frame, StackTrace
from repro.core.config import HangDoctorConfig
from repro.core.hang_doctor import HangDoctor
from repro.core.states import ActionState
from repro.core.trace_analyzer import TraceAnalyzer
from repro.faults import (
    CounterUnavailableError,
    FaultInjector,
    FaultPlan,
    TraceCollectionError,
    TransientCounterError,
)
from repro.sim.engine import ExecutionEngine


# ------------------------------------------------------------------ plan


def test_plan_defaults_to_no_faults():
    plan = FaultPlan()
    assert not plan.any_faults
    assert plan.describe() == "no faults"


def test_plan_validates_rates():
    with pytest.raises(ValueError, match="counter_transient_rate"):
        FaultPlan(counter_transient_rate=1.5).validate()
    with pytest.raises(ValueError, match="trace_denied_rate"):
        FaultPlan(trace_denied_rate=-0.1).validate()
    with pytest.raises(ValueError, match="counter_undercount_factor"):
        FaultPlan(counter_undercount_factor=1.0).validate()


def test_plan_uniform_scales_every_subsystem():
    plan = FaultPlan.uniform(0.2)
    assert plan.any_faults
    assert plan.counter_transient_rate == pytest.approx(0.2)
    assert plan.counter_unavailable_rate == pytest.approx(0.05)
    assert plan.trace_denied_rate == pytest.approx(0.2)
    assert plan.persistence_corrupt_rate == pytest.approx(0.2)
    assert FaultPlan.uniform(0.0) == FaultPlan(counter_undercount_factor=0.5)
    with pytest.raises(ValueError):
        FaultPlan.uniform(2.0)


# -------------------------------------------------------------- injector


def _fault_sequence(seed, scope, n=200):
    injector = FaultInjector(FaultPlan.uniform(0.3), seed=seed, scope=scope)
    sequence = []
    for _ in range(n):
        try:
            injector.counter_read_fault()
            sequence.append("ok")
        except TransientCounterError:
            sequence.append("transient")
        except CounterUnavailableError:
            sequence.append("dead")
    return sequence


def test_injector_is_deterministic_per_seed_and_scope():
    assert _fault_sequence(0, ("K9-mail",)) == _fault_sequence(0, ("K9-mail",))
    assert (_fault_sequence(0, ("K9-mail",))
            != _fault_sequence(1, ("K9-mail",)))
    assert (_fault_sequence(0, ("K9-mail",))
            != _fault_sequence(0, ("AndStatus",)))


def test_zero_rate_channels_never_draw():
    injector = FaultInjector(FaultPlan(), seed=0)
    for _ in range(50):
        injector.counter_read_fault()
        injector.trace_collection_fault()
    assert injector.corrupt_counter_value("cpu-cycles", 100.0) == 100.0
    assert injector.corrupt_text('{"a": 1}') == '{"a": 1}'
    assert injector.draws == {}
    assert injector.fired_total() == 0


def test_injector_undercount_scales_values():
    injector = FaultInjector(
        FaultPlan(counter_undercount_rate=1.0, counter_undercount_factor=0.5),
        seed=0,
    )
    assert injector.corrupt_counter_value("cpu-cycles", 80.0) == 40.0
    assert injector.fired == {"counter-undercount": 1}


def test_injector_mangles_traces_deterministically():
    frames = tuple(
        Frame(clazz="com.app.A", method=f"m{i}", file="A.java", line=i)
        for i in range(4)
    )
    traces = [StackTrace(time_ms=float(i), frames=frames) for i in range(30)]
    mangled_a = FaultInjector(
        FaultPlan(trace_truncate_rate=0.5), seed=7
    ).mangle_traces(traces)
    mangled_b = FaultInjector(
        FaultPlan(trace_truncate_rate=0.5), seed=7
    ).mangle_traces(traces)
    assert mangled_a == mangled_b
    truncated = [t for t in mangled_a if t.frames != frames]
    assert truncated  # at rate 0.5 over 30 traces some must trip
    assert all(t.frames == frames[:2] for t in truncated)


def test_injector_corrupt_text_truncates():
    injector = FaultInjector(FaultPlan(persistence_corrupt_rate=1.0), seed=0)
    text = '{"schema": 1, "app": "K9-mail", "entries": []}'
    corrupt = injector.corrupt_text(text)
    assert len(corrupt) < len(text)
    assert text.startswith(corrupt)


# ----------------------------------------------- zero-plan equivalence


def _doctor_fingerprint(doctor, executions):
    detections = []
    costs = []
    for execution in executions:
        outcome = doctor.process(execution)
        detections.extend(
            (d.action_name, d.root_name, d.time_ms, d.occurrence)
            for d in outcome.detections
        )
        costs.append((
            outcome.cost.counter_reads, outcome.cost.trace_samples,
            outcome.cost.counter_read_failures, outcome.cost.trace_failures,
        ))
    return detections, costs, doctor.report.render()


def test_zero_plan_is_byte_identical_to_no_fault_layer(device, k9):
    """The acceptance criterion behind rate-0 chaos reproducing the
    fault-free tables: an all-zero plan changes nothing at all."""
    engine = ExecutionEngine(device, seed=5)
    session = [action.name for action in k9.actions] * 6
    executions = engine.run_session(k9, session)
    plain = HangDoctor(k9, device, seed=5)
    zeroed = HangDoctor(k9, device, seed=5, faults=FaultPlan())
    assert (_doctor_fingerprint(plain, executions)
            == _doctor_fingerprint(zeroed, executions))
    assert zeroed.faults.draws == {}
    assert not zeroed.degraded
    assert not zeroed.report.degradations


# ------------------------------------------------- graceful degradation


def _run_until(doctor, engine, app, action_name, predicate, limit=60):
    action = app.action(action_name)
    for _ in range(limit):
        doctor.process(engine.run_action(app, action))
        if predicate():
            return True
    return False


def test_transient_failures_degrade_to_timeout_only(device, k9):
    config = HangDoctorConfig(counter_failure_degrade_after=1)
    doctor = HangDoctor(
        k9, device, config=config, seed=3,
        faults=FaultPlan(counter_transient_rate=1.0),
    )
    engine = ExecutionEngine(device, seed=3)
    assert _run_until(doctor, engine, k9, "open_email",
                      lambda: doctor.degraded)
    # The hang that broke the counters was not dropped: without
    # evidence to rule it UI work it went to the Diagnoser.
    assert doctor.state_of("open_email") is ActionState.SUSPICIOUS
    kinds = [record.kind for record in doctor.report.degradations]
    assert kinds == ["timeout-only"]
    assert "consecutive" in doctor.report.degradations[0].detail
    assert "timeout-only" in doctor.report.render()


def test_retry_recovers_from_occasional_transients(device, k9):
    """At a modest transient rate the bounded retry keeps the doctor
    out of degraded mode: failures are paid for (extra counter reads)
    but the checks still complete."""
    doctor = HangDoctor(
        k9, device, seed=1,
        faults=FaultPlan(counter_transient_rate=0.3),
    )
    engine = ExecutionEngine(device, seed=1)
    session = [action.name for action in k9.actions] * 12
    total_failures = 0
    for execution in engine.run_session(k9, session):
        outcome = doctor.process(execution)
        total_failures += outcome.cost.counter_read_failures
    assert total_failures > 0
    assert not doctor.degraded
    assert not doctor.report.degradations


def test_permanent_counter_death_degrades(device, k9):
    doctor = HangDoctor(
        k9, device,
        config=HangDoctorConfig(counter_failure_degrade_after=1),
        seed=9, faults=FaultPlan(counter_unavailable_rate=1.0),
    )
    engine = ExecutionEngine(device, seed=9)
    assert _run_until(doctor, engine, k9, "open_email",
                      lambda: doctor.degraded)
    assert doctor.schecker.monitor.unavailable
    # In timeout-only mode fresh Uncategorized hangs still reach the
    # Diagnoser (no counter windows are charged any more).
    assert _run_until(
        doctor, engine, k9, "search_messages",
        lambda: doctor.state_of("search_messages") is not ActionState.UNCATEGORIZED,
    )
    assert doctor.state_of("search_messages") is ActionState.SUSPICIOUS


def test_trace_denial_quarantines_the_action(device, k9):
    doctor = HangDoctor(
        k9, device, seed=13, faults=FaultPlan(trace_denied_rate=1.0),
    )
    engine = ExecutionEngine(device, seed=13)
    assert _run_until(doctor, engine, k9, "open_email",
                      lambda: doctor.diagnoser.is_quarantined("open_email"))
    assert doctor.diagnoser.quarantined_actions() == ["open_email"]
    # No evidence ever came back, so the action keeps its state rather
    # than being acquitted or convicted.
    assert doctor.state_of("open_email") is ActionState.SUSPICIOUS
    kinds = {record.kind for record in doctor.report.degradations}
    assert "trace-quarantine" in kinds
    assert len(doctor.report.degradations) == 1  # reported once, not per hang


def test_diagnoser_streak_resets_on_success(device, k9):
    """Sporadic denials below the quarantine threshold never disable
    tracing: one successful collection resets the streak."""
    doctor = HangDoctor(
        k9, device, seed=2, faults=FaultPlan(trace_denied_rate=0.1),
    )
    engine = ExecutionEngine(device, seed=2)
    failures = 0
    for _ in range(60):
        outcome = doctor.process(engine.run_action(k9, k9.action("open_email")))
        failures += outcome.cost.trace_failures
    assert failures > 0
    assert not doctor.diagnoser.is_quarantined("open_email")
    assert len(doctor.report) > 0  # diagnoses still landed


def test_no_fault_ever_raises_out_of_process(device, k9, andstatus):
    """The headline robustness property, at brutal fault rates."""
    for app in (k9, andstatus):
        engine = ExecutionEngine(device, seed=17)
        doctor = HangDoctor(app, device, seed=17,
                            faults=FaultPlan.uniform(0.8))
        session = [action.name for action in app.actions] * 8
        for execution in engine.run_session(app, session):
            doctor.process(execution)  # must never raise
        assert doctor.faults.fired_total() > 0


# -------------------------------------------------------- trace analyzer


def _frame(name):
    return Frame(clazz="com.app.Work", method=name, file="W.java", line=10)


def test_analyzer_skips_unreadable_traces():
    frames = (_frame("outer"), _frame("inner"))
    readable = [StackTrace(time_ms=float(i), frames=frames)
                for i in range(6)]
    junk = [None, StackTrace(time_ms=99.0, frames=None)]
    analyzer = TraceAnalyzer(occurrence_threshold=0.5)
    clean = analyzer.analyze(readable)
    noisy = analyzer.analyze(junk + readable + junk)
    assert noisy == clean
    assert noisy.trace_count == 6
    assert noisy.root == _frame("inner")


def test_analyzer_handles_all_unreadable():
    analyzer = TraceAnalyzer()
    diagnosis = analyzer.analyze([None, StackTrace(time_ms=0.0, frames=None)])
    assert diagnosis.root is None
    assert not diagnosis.is_hang_bug
    assert diagnosis.trace_count == 0


def test_collector_counts_refusals(device, k9):
    from repro.core.trace_collector import TraceCollector

    injector = FaultInjector(FaultPlan(trace_denied_rate=1.0), seed=0)
    collector = TraceCollector(faults=injector)
    engine = ExecutionEngine(device, seed=4)
    execution = engine.run_action(k9, k9.action("open_email"))
    with pytest.raises(TraceCollectionError):
        collector.collect(execution, execution.events[0])
    assert collector.collection_failures == 1
    assert collector.samples_collected == 0


# ------------------------------------------------- report-upload channels


def test_report_upload_channels_fire_deterministically():
    plan = FaultPlan(report_drop_rate=1.0, report_duplicate_rate=1.0,
                     report_delay_rate=1.0)
    injector = FaultInjector(plan, seed=5, scope=("upload",))
    assert injector.drop_report_batch()
    assert injector.duplicate_report_batch()
    assert injector.delay_report_batch()
    again = FaultInjector(plan, seed=5, scope=("upload",))
    assert [again.drop_report_batch() for _ in range(4)] == [True] * 4


def test_report_upload_channels_never_draw_at_rate_zero():
    injector = FaultInjector(FaultPlan(), seed=0)
    assert not injector.drop_report_batch()
    assert not injector.duplicate_report_batch()
    assert not injector.delay_report_batch()
    assert injector.draws == {}


def test_uniform_plan_covers_report_channels():
    plan = FaultPlan.uniform(0.25)
    assert plan.report_drop_rate == 0.25
    assert plan.report_duplicate_rate == 0.25
    assert plan.report_delay_rate == 0.25
    assert "report_drop=0.25" in plan.describe()


# --------------------------------------------------- executor channels


def test_plan_validates_executor_rates():
    with pytest.raises(ValueError, match="worker_kill_rate"):
        FaultPlan(worker_kill_rate=1.5).validate()
    with pytest.raises(ValueError, match="shard_stall_rate"):
        FaultPlan(shard_stall_rate=-0.1).validate()
    with pytest.raises(ValueError, match="torn_write_rate"):
        FaultPlan(torn_write_rate=2.0).validate()
    with pytest.raises(ValueError, match="shard_stall_seconds"):
        FaultPlan(shard_stall_seconds=0.0).validate()


def test_uniform_plan_keeps_executor_channels_off():
    """FaultPlan.uniform scales the *runtime's* fault surface; the
    executor channels stress the experiment harness itself and are
    only ever opted into explicitly — a chaos sweep at rate r must
    not also randomly kill its own workers."""
    plan = FaultPlan.uniform(0.8)
    assert plan.worker_kill_rate == 0.0
    assert plan.shard_stall_rate == 0.0
    assert plan.torn_write_rate == 0.0


def test_executor_channels_never_draw_at_rate_zero():
    injector = FaultInjector(FaultPlan(), seed=0)
    for shard in range(20):
        assert not injector.worker_kill_fault(shard, 0)
        assert not injector.shard_stall_fault(shard, 0)
    assert not injector.torn_write_fault("entry")
    assert injector.draws == {}
    assert injector.fired_total() == 0


def test_keyed_draws_independent_of_call_order():
    """The property that makes executor faults worker-count-proof:
    each (shard, attempt) verdict depends only on its key, never on
    how many other draws happened first."""
    plan = FaultPlan(worker_kill_rate=0.4, shard_stall_rate=0.4)
    forward = FaultInjector(plan, seed=11)
    backward = FaultInjector(plan, seed=11)
    shards = list(range(30))
    verdicts_fwd = [forward.worker_kill_fault(s, 0) for s in shards]
    # Interleave other channels and reverse the order on the second
    # injector; per-shard verdicts must not move.
    verdicts_bwd = []
    for s in reversed(shards):
        backward.shard_stall_fault(s, 1)
        verdicts_bwd.append(backward.worker_kill_fault(s, 0))
    assert verdicts_bwd[::-1] == verdicts_fwd
    assert any(verdicts_fwd) and not all(verdicts_fwd)


def test_retried_shard_draws_a_fresh_kill_verdict():
    """A shard killed on attempt 0 is keyed differently on attempt 1,
    so a sub-1.0 kill rate cannot loop a shard forever."""
    injector = FaultInjector(FaultPlan(worker_kill_rate=0.5), seed=1)
    verdicts = [
        [injector.worker_kill_fault(shard, attempt) for attempt in range(4)]
        for shard in range(20)
    ]
    assert any(row[0] and not row[1] for row in verdicts)


# ---------------------------------------------------- network channels


def test_channel_family_constants_pin_the_exclusion_sets():
    """The opt-in fault families, pinned so a new channel must be
    classified deliberately: executor channels stress the harness,
    network channels stress the serve client/service wire, fleet
    channels reshape stream-mode fleet membership."""
    assert FaultPlan.EXECUTOR_CHANNELS == (
        "worker_kill_rate", "shard_stall_rate", "torn_write_rate",
    )
    assert FaultPlan.NETWORK_CHANNELS == (
        "request_drop_rate", "request_delay_rate",
        "connection_reset_rate", "response_corrupt_rate",
    )
    assert FaultPlan.FLEET_CHANNELS == ("device_churn_rate",)


def test_uniform_plan_keeps_network_channels_off():
    """FaultPlan.uniform scales the runtime monitoring surface; the
    network channels belong to a plan handed to the serve client and
    must stay opt-in — a chaos sweep at rate r must not also drop its
    own crowd uploads."""
    plan = FaultPlan.uniform(0.9)
    for name in (FaultPlan.NETWORK_CHANNELS + FaultPlan.EXECUTOR_CHANNELS
                 + FaultPlan.FLEET_CHANNELS):
        assert getattr(plan, name) == 0.0, name


def test_network_channels_validate_like_the_rest():
    with pytest.raises(ValueError, match="request_drop_rate"):
        FaultPlan(request_drop_rate=1.5).validate()
    with pytest.raises(ValueError, match="response_corrupt_rate"):
        FaultPlan(response_corrupt_rate=-0.2).validate()
    with pytest.raises(ValueError, match="request_delay_ms"):
        FaultPlan(request_delay_ms=0.0).validate()


def test_network_channels_never_draw_at_rate_zero():
    injector = FaultInjector(FaultPlan(), seed=0)
    for attempt in range(5):
        assert not injector.request_drop_fault("b", attempt)
        assert injector.request_delay_fault("b", attempt) == 0.0
        assert not injector.connection_reset_fault("b", attempt)
        assert injector.corrupt_response("text", "b", attempt) == "text"
    assert injector.draws == {}


def test_network_verdicts_keyed_by_batch_and_attempt():
    """(batch_id, attempt) fully determines each verdict — independent
    of concurrency, upload order, or other channels' draws — so a
    fleet's injected fault sequence reproduces at any client count."""
    plan = FaultPlan(request_drop_rate=0.4, connection_reset_rate=0.4)
    forward = FaultInjector(plan, seed=9, scope=("serve-net",))
    backward = FaultInjector(plan, seed=9, scope=("serve-net",))
    keys = [(f"app/dev{i}/round0", a) for i in range(10) for a in range(3)]
    fwd = [forward.request_drop_fault(k, a) for k, a in keys]
    bwd = []
    for k, a in reversed(keys):
        backward.connection_reset_fault(k, a)  # interleaved other channel
        bwd.append(backward.request_drop_fault(k, a))
    assert bwd[::-1] == fwd
    assert any(fwd) and not all(fwd)
    # Attempts re-key: a batch's verdicts vary across attempts, so a
    # dropped first attempt is not a pinned-forever verdict.
    drops = FaultInjector(FaultPlan(request_drop_rate=0.6), seed=2)
    verdicts = [[drops.request_drop_fault(f"b{i}", a) for a in range(6)]
                for i in range(10)]
    assert any(True in row and False in row for row in verdicts)


def test_corrupt_response_truncates_when_tripped():
    injector = FaultInjector(FaultPlan(response_corrupt_rate=1.0), seed=0)
    text = "HTTP/1.1 200 OK\r\n\r\n{}"
    garbled = injector.corrupt_response(text, "b", 1)
    assert garbled == text[:len(text) // 2]


def test_request_delay_returns_plan_milliseconds():
    plan = FaultPlan(request_delay_rate=1.0, request_delay_ms=40.0)
    injector = FaultInjector(plan, seed=0)
    assert injector.request_delay_fault("b", 1) == 40.0


# ------------------------------------------------------ fleet channels


def test_device_churn_verdicts_keyed_by_event():
    """(kind, round, slot) fully determines each churn verdict —
    independent of draw order or other channels — so stream-mode fleet
    membership is a pure function of (seed, churn rate) and survives
    any worker count or executor-failure schedule."""
    plan = FaultPlan(device_churn_rate=0.4, worker_kill_rate=0.4)
    forward = FaultInjector(plan, seed=13, scope=("stream-churn",))
    backward = FaultInjector(plan, seed=13, scope=("stream-churn",))
    events = [(kind, r, s) for kind in ("join", "leave")
              for r in range(6) for s in range(5)]
    fwd = [forward.device_churn_fault(*event) for event in events]
    bwd = []
    for event in reversed(events):
        backward.worker_kill_fault(event[1], 0)  # interleaved channel
        bwd.append(backward.device_churn_fault(*event))
    assert bwd[::-1] == fwd
    assert any(fwd) and not all(fwd)
    # Join and leave draw from distinct keys: the same (round, slot)
    # can join without also leaving.
    joins = [forward.device_churn_fault("join", r, s)
             for r in range(6) for s in range(5)]
    leaves = [forward.device_churn_fault("leave", r, s)
              for r in range(6) for s in range(5)]
    assert joins != leaves


def test_device_churn_never_draws_at_rate_zero():
    injector = FaultInjector(FaultPlan(), seed=0)
    for r in range(4):
        assert not injector.device_churn_fault("join", r, 0)
        assert not injector.device_churn_fault("leave", r, 0)
    assert injector.draws == {}


def test_device_churn_rate_validates_like_the_rest():
    with pytest.raises(ValueError, match="device_churn_rate"):
        FaultPlan(device_churn_rate=1.2).validate()
    with pytest.raises(ValueError, match="device_churn_rate"):
        FaultPlan(device_churn_rate=-0.1).validate()
