"""Tests for the experiment harness (training sets, tables, renderers)."""

import pytest

from repro.harness.tables import render_table
from repro.harness.training import (
    TRAINING_BUG_SITES,
    build_ui_probe_app,
    training_bug_cases,
    training_ui_cases,
    validation_bug_cases,
)


def test_training_set_sizes_match_paper():
    """10 well-known bugs + 11 UI-APIs (paper §3.3.1)."""
    assert len(training_bug_cases()) == 10
    assert len(training_ui_cases()) == 11


def test_validation_set_is_the_23_unknown_bugs():
    assert len(validation_bug_cases()) == 23


def test_training_bugs_are_offline_detectable():
    for case in training_bug_cases():
        op = case.app.operation_by_site(case.site_id)
        assert op.api.known_blocking


def test_validation_bugs_are_offline_missed():
    for case in validation_bug_cases():
        op = case.app.operation_by_site(case.site_id)
        assert not op.api.known_blocking


def test_training_and_validation_disjoint():
    training = set(TRAINING_BUG_SITES)
    for case in validation_bug_cases():
        assert (case.app.name, case.action_name) not in training


def test_ui_probe_has_eleven_actions():
    probe = build_ui_probe_app()
    assert len(probe.actions) == 11
    assert not probe.has_hang_bugs()


def test_ui_probe_actions_reliably_hang(device):
    from repro.sim.engine import ExecutionEngine

    probe = build_ui_probe_app()
    engine = ExecutionEngine(device, seed=2)
    hangs = 0
    runs = 0
    for action in probe.actions:
        for _ in range(3):
            runs += 1
            hangs += engine.run_action(probe, action).has_soft_hang
    assert hangs / runs > 0.7


def test_collect_training_samples_labels(training_samples_diff):
    bugs = [s for s in training_samples_diff if s.is_hang_bug]
    uis = [s for s in training_samples_diff if not s.is_hang_bug]
    assert len(bugs) == 10 * 5
    assert len(uis) == 11 * 5


def test_collect_training_samples_have_all_events(training_samples_diff):
    from repro.sim.counters import ALL_EVENTS

    for sample in training_samples_diff[:5]:
        assert set(sample.values) == set(ALL_EVENTS)


def test_render_table_alignment():
    text = render_table(("name", "value"), [("a", 1), ("longer", 2.5)],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert len(lines) == 5


def test_render_table_formats_floats():
    text = render_table(("v",), [(1.23456,), (1e9,)])
    assert "1.23" in text
    assert "1e+09" in text
