"""Unit tests for harness helpers (comparison math, stability stats)."""

import pytest

from repro.harness.exp_comparison import (
    Figure8AppResult,
    Figure8Result,
    fit_utilization_thresholds,
)
from repro.harness.exp_stability import StabilityResult


def synthetic_figure8():
    return Figure8Result(apps=[
        Figure8AppResult(
            app_name="A",
            confusion={"TI": (10, 20, 0), "HD": (8, 1, 2)},
            overhead={"TI": 2.0, "HD": 1.0},
        ),
        Figure8AppResult(
            app_name="B",
            confusion={"TI": (4, 10, 0), "HD": (4, 0, 0)},
            overhead={"TI": 3.0, "HD": 1.5},
        ),
    ])


def test_normalized_tp_per_app():
    result = synthetic_figure8()
    table = result.normalized("tp")
    assert table["A"]["HD"] == pytest.approx(0.8)
    assert table["B"]["HD"] == pytest.approx(1.0)


def test_normalized_average_row():
    result = synthetic_figure8()
    table = result.normalized("tp")
    assert table["Average"]["HD"] == pytest.approx(0.9)
    assert table["Average"]["TI"] == pytest.approx(1.0)


def test_normalized_fp():
    result = synthetic_figure8()
    table = result.normalized("fp")
    assert table["A"]["HD"] == pytest.approx(1 / 20)
    assert table["B"]["HD"] == 0.0


def test_overheads_average():
    result = synthetic_figure8()
    table = result.overheads()
    assert table["Average"]["TI"] == pytest.approx(2.5)
    assert table["Average"]["HD"] == pytest.approx(1.25)


def test_fit_utilization_thresholds_low_below_high(device):
    low, high = fit_utilization_thresholds(device, seed=3,
                                           runs_per_case=2)
    for metric in low.values:
        assert low.values[metric] < high.values[metric]


def test_stability_result_math():
    result = StabilityResult(
        metrics={"x": [1.0, 2.0, 3.0]}, seeds=(1, 2, 3)
    )
    assert result.mean("x") == pytest.approx(2.0)
    assert result.spread("x") == (1.0, 3.0)
    assert result.std("x") == pytest.approx(0.8165, abs=1e-3)
    assert "x" in result.render()
