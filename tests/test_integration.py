"""Cross-module integration stories."""

import pytest

from repro.analysis.metrics import detected_bug_sites
from repro.apps.catalog import get_app
from repro.apps.sessions import SessionGenerator
from repro.core.blocking_db import BlockingApiDatabase
from repro.core.hang_doctor import HangDoctor
from repro.detectors.offline import OfflineScanner
from repro.detectors.runner import run_detector, run_detectors
from repro.detectors.timeout import TimeoutDetector
from repro.sim.engine import ExecutionEngine


def test_hang_doctor_supplements_offline_detection(device):
    """The paper's end-to-end story on Sage Math: offline finds the
    known nested insert; Hang Doctor finds the unknown toJson bugs at
    runtime and feeds them back to the database."""
    sage = get_app("Sage Math")
    db = BlockingApiDatabase.initial()
    scanner = OfflineScanner(blocking_db=db)

    offline_before = scanner.detected_sites(sage)
    missed_before = {op.site_id for op in scanner.missed_bugs(sage)}
    assert missed_before  # the toJson call sites

    engine = ExecutionEngine(device, seed=8)
    doctor = HangDoctor(sage, device, blocking_db=db, seed=8)
    names = [a.name for a in sage.actions] * 25
    run = run_detector(doctor, engine.run_session(sage, names, gap_ms=200.0))
    runtime_sites = detected_bug_sites(sage, run.detections)
    assert missed_before <= runtime_sites

    # The database learned toJson; offline scanning improves.
    assert db.knows("com.google.gson.Gson.toJson")
    offline_after = scanner.detected_sites(sage)
    assert offline_before < offline_after
    assert not scanner.missed_bugs(sage)


def test_database_learning_transfers_across_apps(device):
    """A bug learned from SkyTube's jsoup hang lets the offline scanner
    warn UOITDC Booking (which calls jsoup too) before release."""
    db = BlockingApiDatabase.initial()
    skytube = get_app("SkyTube")
    uoitdc = get_app("UOITDC Booking")
    scanner = OfflineScanner(blocking_db=db)
    jsoup_sites_before = {
        d.api_name for d in scanner.scan_app(uoitdc)
    }
    assert "org.jsoup.Jsoup.parse" not in jsoup_sites_before

    engine = ExecutionEngine(device, seed=8)
    doctor = HangDoctor(skytube, device, blocking_db=db, seed=8)
    run_detector(
        doctor, engine.run_session(skytube, ["open_video"] * 20,
                                   gap_ms=200.0)
    )
    assert db.knows("org.jsoup.Jsoup.parse")
    jsoup_sites_after = {d.api_name for d in scanner.scan_app(uoitdc)}
    assert "org.jsoup.Jsoup.parse" in jsoup_sites_after


def test_hang_doctor_beats_timeout_on_traced_false_positives(device, k9):
    engine = ExecutionEngine(device, seed=6)
    generator = SessionGenerator(seed=6)
    executions = []
    for session in generator.fleet_sessions(k9, users=2,
                                            actions_per_user=40):
        executions.extend(
            engine.run_session(k9, session.action_names, gap_ms=500.0)
        )
    runs = run_detectors(
        [TimeoutDetector(k9), HangDoctor(k9, device, seed=6)], executions
    )
    ti = runs["TI"].confusion()
    hd = runs["HD"].confusion()
    assert hd.fp < ti.fp / 3
    assert hd.tp > 0.4 * ti.tp


def test_hang_doctor_cheaper_than_timeout(device, k9):
    engine = ExecutionEngine(device, seed=6)
    generator = SessionGenerator(seed=6)
    executions = []
    for session in generator.fleet_sessions(k9, users=2,
                                            actions_per_user=40):
        executions.extend(
            engine.run_session(k9, session.action_names, gap_ms=500.0)
        )
    runs = run_detectors(
        [TimeoutDetector(k9), HangDoctor(k9, device, seed=6)], executions
    )
    assert runs["HD"].overhead().average_percent < (
        runs["TI"].overhead().average_percent
    )


def test_fixed_app_produces_no_detections(device):
    """After the developer applies Hang Doctor's fixes, the app runs
    clean — the paper's verification methodology ("we fix the bug and
    verify that the app does not have any more soft hangs")."""
    sticker = get_app("StickerCamera")
    fixed = sticker.fixed()
    engine = ExecutionEngine(device, seed=8)
    doctor = HangDoctor(fixed, device, seed=8)
    names = [a.name for a in fixed.actions] * 15
    run = run_detector(doctor, engine.run_session(fixed, names,
                                                  gap_ms=200.0))
    assert detected_bug_sites(fixed, run.detections) == set()


def test_generality_across_devices(k9):
    """The filter thresholds transfer across device profiles (paper:
    verified on LG V10, Nexus 5, Galaxy S3)."""
    from repro.core.config import HangDoctorConfig
    from repro.core.schecker import SChecker
    from repro.sim.device import ALL_DEVICES
    from tests.helpers import run_until

    for device in ALL_DEVICES:
        engine = ExecutionEngine(device, seed=4)
        schecker = SChecker(HangDoctorConfig(), device)
        bug_execution = run_until(
            engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
        )
        assert schecker.check(bug_execution).symptomatic, device.name
        ui_execution = run_until(
            engine, k9, "folders", lambda ex: ex.has_soft_hang
        )
        assert not schecker.check(ui_execution).symptomatic, device.name


def test_quickstart_docstring_flow(device, k9):
    """The package docstring's quickstart runs as written."""
    from repro import ExecutionEngine as Engine, HangDoctor as Doctor

    engine = Engine(device, seed=1)
    doctor = Doctor(k9, device)
    for execution in engine.run_session(k9, ["open_email"] * 3):
        outcome = doctor.process(execution)
        assert outcome.cost.rt_events >= 1
