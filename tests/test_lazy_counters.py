"""Lazy-evaluation mode of the counter model.

A :class:`~repro.sim.counters.CounterModel` built with an *events*
restriction computes only the requested events: kernel-only sets skip
the PMU block (and its DVFS draw) outright, and a partial PMU set
computes just the dependency closure of the requested events with one
pooled factor draw.  These tests pin the contract: restricted keys,
strict validation, determinism per (seed, event set), and an engine
wired for filter-events-only monitoring still detecting hangs.
"""

import pytest

from repro.base.kinds import ApiKind
from repro.base.rng import stream
from repro.sim.counters import (
    ALL_EVENTS,
    CounterModel,
    FILTER_EVENTS,
    KERNEL_EVENTS,
    PMU_EVENTS,
)
from repro.sim.engine import ExecutionEngine
from repro.sim.pmu import PmuSampler
from repro.sim.timeline import MAIN_THREAD

NEUTRAL_UARCH = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
                 "mem": 1.0}


def _counts(device, events, key="lazy"):
    model = CounterModel(device, events=events)
    rng = stream("lazy-counter-test", key)
    return model.segment_counts(
        kind=ApiKind.BLOCKING, thread=MAIN_THREAD, wall_ms=300.0,
        cpu_ms=180.0, pages=900, uarch=NEUTRAL_UARCH, rng=rng,
    )


def test_default_model_returns_all_46_events(device):
    assert set(_counts(device, None)) == set(ALL_EVENTS)


def test_restricted_model_returns_exactly_requested_keys(device):
    counts = _counts(device, FILTER_EVENTS)
    assert tuple(counts) == FILTER_EVENTS
    single = _counts(device, ("instructions",))
    assert tuple(single) == ("instructions",)


def test_unknown_event_rejected_at_construction(device):
    with pytest.raises(ValueError, match="unknown performance events"):
        CounterModel(device, events=("context-switches", "no-such-event"))


def test_lazy_mode_deterministic_per_seed_and_event_set(device):
    assert _counts(device, FILTER_EVENTS, key="a") == \
        _counts(device, FILTER_EVENTS, key="a")
    assert _counts(device, FILTER_EVENTS, key="a") != \
        _counts(device, FILTER_EVENTS, key="b")


def test_kernel_values_match_full_model_draw_order(device):
    """The full-event draw order starts with the kernel block, so a
    model restricted to *all* kernel events reproduces the full
    model's kernel values exactly from the same rng state."""
    full = _counts(device, None, key="same")
    kernel = _counts(device, KERNEL_EVENTS, key="same")
    assert kernel == {event: full[event] for event in KERNEL_EVENTS}


def test_pmu_sampler_kernel_only_flag(device):
    assert PmuSampler(device, FILTER_EVENTS).kernel_only
    assert not PmuSampler(device, FILTER_EVENTS + ("cpu-cycles",)).kernel_only


def test_engine_with_filter_events_still_detects_hangs(device, k9):
    """A lazily-restricted engine is a different deterministic universe
    but a working one: soft hangs still occur, filter events carry
    real values, and unrequested PMU events read as zero everywhere."""
    engine = ExecutionEngine(device, seed=3, counter_events=FILTER_EVENTS)
    action = next(a for a in k9.actions if a.hang_bug_operations())
    saw_hang = False
    for _ in range(30):
        execution = engine.run_action(k9, action)
        if execution.has_soft_hang:
            saw_hang = True
            break
    assert saw_hang
    lo, hi = execution.start_ms, execution.end_ms
    assert execution.timeline.total(
        MAIN_THREAD, "context-switches", lo, hi) > 0
    for pmu_event in PMU_EVENTS[:3]:
        assert execution.timeline.total(MAIN_THREAD, pmu_event, lo, hi) == 0.0
