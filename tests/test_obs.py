"""The ops plane: exposition, rollups, SLO/burn-rate alerts, profiling.

The contract under test, from ISSUE 10 and ``docs/observability.md``:
Prometheus exposition renders any registry deterministically with
cumulative histogram buckets; rollups merge associatively and render
byte-identically regardless of input order; SLO evaluation flags
exhausted error budgets and emits deterministic multi-window
burn-rate alerts; the collapsed-stack export reconstructs span
ancestry; and the three ops files are byte-stable.
"""

import json
from types import SimpleNamespace

import pytest

from repro.obs import (
    DEFAULT_OBJECTIVES,
    OBS_FILENAMES,
    Rollup,
    alerts_to_jsonl,
    bucket_quantile,
    build_rollup,
    collapse_stacks,
    evaluate_slos,
    flamegraph_text,
    records_from_jsonl,
    render_dash,
    render_prometheus,
    render_slo_table,
    self_time_rows,
    split_labels,
    write_obs_exports,
)
from repro.telemetry import MetricsRegistry, labeled, session, write_exports


# -------------------------------------------------------------- labels


def test_labeled_is_canonical_and_sorted():
    a = labeled("serve.http.requests", status="2xx", route="/healthz")
    b = labeled("serve.http.requests", route="/healthz", status="2xx")
    assert a == b == "serve.http.requests{route=/healthz,status=2xx}"
    assert labeled("plain") == "plain"


def test_labeled_rejects_delimiter_characters():
    with pytest.raises(ValueError):
        labeled("m", bad="a,b")
    with pytest.raises(ValueError):
        labeled("m", **{"k=": "v"})


def test_split_labels_round_trips():
    name = labeled("core.hangs", app="K9-mail", device="lg-v10")
    base, labels = split_labels(name)
    assert base == "core.hangs"
    assert labels == {"app": "K9-mail", "device": "lg-v10"}
    assert split_labels("no.labels") == ("no.labels", {})


# ---------------------------------------------------------- exposition


def test_render_prometheus_counters_gauges_and_order():
    a = MetricsRegistry()
    a.count("z.last", 2)
    a.count("a.first", 1)
    a.gauge_set("mid.gauge", 1.5)
    b = MetricsRegistry()
    b.gauge_set("mid.gauge", 1.5)
    b.count("a.first", 1)
    b.count("z.last", 2)
    text = render_prometheus(a)
    assert text == render_prometheus(b)  # insertion order is invisible
    lines = text.splitlines()
    assert lines[0] == "# TYPE a_first counter"
    assert lines[1] == "a_first 1"
    assert "# TYPE mid_gauge gauge" in lines
    assert "mid_gauge 1.5" in lines
    assert lines[-1] == "z_last 2"


def test_render_prometheus_histogram_is_cumulative():
    registry = MetricsRegistry()
    for value in (0.5, 3.0, 3.0, 9999.0):
        registry.observe("core.hang.response_ms", value)
    text = render_prometheus(registry)
    lines = [l for l in text.splitlines() if not l.startswith("#")]
    by_name = dict(l.rsplit(" ", 1) for l in lines)
    assert by_name['core_hang_response_ms_bucket{le="1"}'] == "1"
    assert by_name['core_hang_response_ms_bucket{le="5"}'] == "3"
    assert by_name['core_hang_response_ms_bucket{le="5000"}'] == "3"
    assert by_name['core_hang_response_ms_bucket{le="+Inf"}'] == "4"
    assert by_name["core_hang_response_ms_count"] == "4"
    assert by_name["core_hang_response_ms_sum"] == "10005.5"
    # +Inf comes last in the bucket series.
    buckets = [l for l in lines if "_bucket" in l]
    assert buckets[-1].startswith(
        'core_hang_response_ms_bucket{le="+Inf"}'
    )


def test_render_prometheus_labeled_series_group_into_one_family():
    registry = MetricsRegistry()
    registry.count(labeled("http.requests", route="/b", status="2xx"), 2)
    registry.count(labeled("http.requests", route="/a", status="5xx"), 1)
    text = render_prometheus(registry)
    assert text.count("# TYPE http_requests counter") == 1
    assert 'http_requests{route="/a",status="5xx"} 1' in text
    assert 'http_requests{route="/b",status="2xx"} 2' in text
    # Series sort by label string: /a before /b.
    assert text.index('route="/a"') < text.index('route="/b"')


def test_render_prometheus_rejects_mixed_family_types():
    registry = MetricsRegistry()
    registry.count("thing", 1)
    registry.gauge_set("thing", 2.0)
    with pytest.raises(ValueError):
        render_prometheus(registry)


# ----------------------------------------------------------- quantiles


def test_bucket_quantile_ranks_and_inf():
    bounds = (1.0, 2.0, 5.0)
    # counts: 2 in le=1, 1 in le=2, 1 in le=5, 0 in +inf
    assert bucket_quantile(bounds, (2, 1, 1, 0), 0.50) == 1.0
    assert bucket_quantile(bounds, (2, 1, 1, 0), 0.75) == 2.0
    assert bucket_quantile(bounds, (2, 1, 1, 0), 0.99) == 5.0
    # A rank landing in the +inf bucket has no finite bound.
    assert bucket_quantile(bounds, (0, 0, 0, 4), 0.50) is None
    assert bucket_quantile(bounds, (0, 0, 0, 0), 0.50) is None


# ------------------------------------------------------------- rollups


def _session_records():
    with session() as tel:
        with tel.track("app/demo"):
            tel.record_span("sim.action.execute", 100.0, 400.0)
            tel.record_span("core.action.process", 100.0, 400.0,
                            hang=True)
            tel.record_span("core.diagnoser.collect", 150.0, 250.0)
            tel.event("core.schecker.verdict", 400.0,
                      verdict="suspicious")
            tel.event("core.kb.short_circuit", 1500.0, action="a")
            tel.record_span("sim.action.execute", 1200.0, 1300.0)
            tel.record_span("core.action.process", 1200.0, 1300.0,
                            hang=False)
            tel.event("stream.round.stats", 0.0, round=0, fleet=3,
                      phase2_collections=2, kb_short_circuits=1,
                      batches_ingested=9, batches_dropped=1,
                      batches_duplicated=0, batches_late=0,
                      duplicates_ignored=0)
    return tel.records


def test_rollup_windows_spans_and_events():
    rollup = Rollup(window_ms=1000.0).add_records(_session_records())
    rows = {(r["domain"], r["index"]): r for r in rollup.rows()}
    sim0 = rows[("sim", 0)]
    assert sim0["counters"]["actions"] == 1
    assert sim0["counters"]["hangs"] == 1
    assert sim0["counters"]["collections"] == 1
    assert sim0["counters"]["verdict.suspicious"] == 1
    assert sim0["histograms"]["doctor_ms"]["count"] == 1
    assert sim0["histograms"]["exec_ms"]["sum"] == 300.0
    # collect 100 ms over exec 300 ms.
    assert sim0["derived"]["overhead_pct"] == pytest.approx(100 / 3)
    sim1 = rows[("sim", 1)]
    assert sim1["counters"]["short_circuits"] == 1
    assert sim1["counters"]["actions"] == 1
    assert "hangs" not in sim1["counters"]
    round0 = rows[("round", 0)]
    assert round0["counters"]["batches_ingested"] == 9
    assert round0["derived"]["availability"] == 0.9


def test_rollup_merge_is_order_independent():
    records = _session_records()
    whole = Rollup().add_records(records)
    front = Rollup().add_records(records[:3])
    back = Rollup().add_records(records[3:])
    merged = Rollup().merge(back).merge(front)  # reversed order
    assert merged.to_jsonl() == whole.to_jsonl()
    # Folding through a state round-trip changes nothing either.
    rebuilt = Rollup().merge_state(
        json.loads(json.dumps(whole.state()))
    )
    assert rebuilt.to_jsonl() == whole.to_jsonl()


def test_rollup_merge_rejects_window_mismatch():
    with pytest.raises(ValueError):
        Rollup(window_ms=1000.0).merge(Rollup(window_ms=500.0))
    with pytest.raises(ValueError):
        Rollup(window_ms=0)


def test_rollup_offline_from_trace_jsonl(tmp_path):
    records = _session_records()
    with session() as tel:
        tel.records.extend(records)
    write_exports(tel, tmp_path)
    offline = records_from_jsonl(tmp_path / "trace.jsonl")
    assert Rollup().add_records(offline).to_jsonl() == \
        Rollup().add_records(records).to_jsonl()


def test_rollup_stream_chaos_and_scenario_adapters():
    stream = SimpleNamespace(rounds=[SimpleNamespace(
        round_index=0, fleet=(0, 1), phase2_collections=4,
        kb_short_circuits=1, batches_ingested=5, batches_dropped=0,
        batches_duplicated=1, batches_late=0, duplicates_ignored=1,
    )])
    chaos = SimpleNamespace(cells=[SimpleNamespace(
        rate=0.2, app_name="K9-mail", tp=3, fp=1, fn=1,
        bugs_detected=3, counter_read_failures=2, trace_failures=0,
        faults_fired=7, overhead_percent=4.5,
    )])
    scenarios = SimpleNamespace(cells=[SimpleNamespace(
        archetype="blocking", index=0, detected_sites={"a", "b"},
        truth_sites={"a", "c"}, fp_actions=1, hangs=6,
    )])
    rollup = build_rollup(stream=stream, chaos=chaos,
                          scenarios=scenarios)
    rows = {(r["domain"], r["index"]): r for r in rollup.rows()}
    assert rows[("round", 0)]["counters"]["phase2_collections"] == 4
    chaos_row = rows[("sweep", "chaos|0.2|K9-mail")]
    assert chaos_row["derived"]["precision"] == 0.75
    assert chaos_row["derived"]["overhead_pct"] == 4.5
    scen_row = rows[("sweep", "scenario|blocking|0")]
    assert scen_row["counters"]["tp"] == 1      # {a}
    assert scen_row["counters"]["fp"] == 2      # {b} + 1 fp action
    assert scen_row["counters"]["fn"] == 1      # {c}


# ----------------------------------------------------------------- SLO


def test_slo_budget_exhaustion_and_exit_semantics():
    rollup = Rollup()
    # 10 rounds, all batches dropped: availability is 0 against a
    # 95% target — the budget is gone.
    for index in range(10):
        window = rollup.window("round", index)
        window.count("batches_ingested", 0)
        window.count("batches_dropped", 10)
    statuses, alerts = evaluate_slos(rollup)
    by_name = {s["objective"]: s for s in statuses}
    availability = by_name["ingest-availability"]
    assert availability["exhausted"]
    assert availability["bad"] == 100
    assert availability["allowed_bad"] == pytest.approx(5.0)
    assert availability["budget_remaining"] == pytest.approx(-95.0)
    # 100% failure burns 20x the availability budget: page alerts on
    # every window once the long window fills.
    assert alerts
    assert all(a["severity"] == "page" for a in alerts
               if a["objective"] == "ingest-availability")
    # Objectives with no windows report no-data, never exhausted.
    assert by_name["precision-floor"]["total"] == 0
    assert not by_name["precision-floor"]["exhausted"]


def test_slo_healthy_rollup_has_no_alerts():
    rollup = Rollup()
    for index in range(10):
        window = rollup.window("round", index)
        window.count("batches_ingested", 100)
        window.count("batches_dropped", 0)
    statuses, alerts = evaluate_slos(rollup)
    assert alerts == []
    assert not any(s["exhausted"] for s in statuses)
    table = render_slo_table(statuses)
    assert "ingest-availability" in table
    assert "EXHAUSTED" not in table


def test_slo_burn_alerts_are_deterministic_and_sorted():
    rollup = Rollup()
    for index in range(8):
        window = rollup.window("round", index)
        window.count("batches_ingested", 0 if index < 4 else 100)
        window.count("batches_dropped", 10 if index < 4 else 0)
    _, alerts = evaluate_slos(rollup)
    again = evaluate_slos(rollup)[1]
    assert alerts_to_jsonl(alerts) == alerts_to_jsonl(again)
    indices = [a["index"] for a in alerts]
    assert indices == sorted(indices)
    for alert in alerts:
        assert alert["burn_short"] >= 3.0
        assert alert["burn_long"] >= 3.0


def test_slo_latency_objective_splits_on_bucket_bounds():
    rollup = Rollup()
    window = rollup.window("sim", 0)
    for value in (50.0, 150.0, 900.0, 900.0):
        window.observe("doctor_ms", value)
    statuses, _ = evaluate_slos(rollup, objectives=(
        {"name": "lat", "kind": "latency", "domain": "sim",
         "histogram": "doctor_ms", "threshold_ms": 200.0,
         "target": 0.5},
    ))
    assert statuses[0]["good"] == 2
    assert statuses[0]["bad"] == 2
    assert not statuses[0]["exhausted"]


# ------------------------------------------------------------ profiling


def test_collapse_stacks_reconstructs_ancestry():
    with session() as tel:
        with tel.track("work"):
            with tel.span("outer"):
                with tel.span("inner"):
                    pass
    lines = collapse_stacks(tel.records)
    stacks = [line.rsplit(" ", 1)[0] for line in lines]
    assert "work;outer" in stacks
    assert "work;outer;inner" in stacks
    assert lines == sorted(lines)


def test_flamegraph_counts_are_self_time_microseconds():
    records = [
        {"type": "span", "track": "t", "seq": 0, "name": "parent",
         "start_ms": 0.0, "end_ms": 10.0, "depth": 0, "attrs": {}},
        {"type": "span", "track": "t", "seq": 1, "name": "child",
         "start_ms": 2.0, "end_ms": 5.0, "depth": 1, "attrs": {}},
        {"type": "event", "track": "t", "seq": 2, "name": "e",
         "start_ms": 1.0, "end_ms": 1.0, "depth": 0, "attrs": {}},
    ]
    text = flamegraph_text(records)
    assert "t;parent 7000\n" in text        # 10 ms - 3 ms child
    assert "t;parent;child 3000\n" in text
    assert "t;e" not in text                # events carry no stack
    rows = self_time_rows(records)
    assert rows[0] == {"name": "parent", "count": 1,
                       "total_self": 7.0, "mean_self": 7.0}


# ------------------------------------------------------------- exports


def test_write_obs_exports_is_byte_stable(tmp_path):
    records = _session_records()
    first = tmp_path / "a"
    second = tmp_path / "b"
    write_obs_exports(first, records=records)
    write_obs_exports(second, records=records)
    for name in OBS_FILENAMES:
        assert (first / name).read_bytes() == (second / name).read_bytes()
    rows = [json.loads(line) for line in
            (first / "rollups.jsonl").read_text().splitlines()]
    assert {row["domain"] for row in rows} == {"round", "sim"}


def test_render_dash_sections(tmp_path):
    with session() as tel:
        tel.records.extend(_session_records())
    write_exports(tel, tmp_path)
    text = render_dash(tmp_path)
    assert "-- SLOs --" in text
    assert "-- rollup windows" in text
    assert "-- top spans by self time --" in text
    assert render_dash(tmp_path) == text  # pure function of the bytes


def test_render_dash_empty_directory(tmp_path):
    text = render_dash(tmp_path)
    assert "no windows" in text
    assert "(no spans recorded)" in text
