"""Tests for repro.osint (OS-level integration)."""

import pytest

from repro.apps.catalog import get_app
from repro.osint import AnrWatchdog, OsHangService
from repro.osint.anr import ANR_TIMEOUT_MS
from repro.sim.engine import ExecutionEngine
from tests.helpers import run_until


def test_anr_timeout_is_5_seconds():
    assert ANR_TIMEOUT_MS == 5000.0


def test_anr_misses_soft_hangs(device, k9):
    """Paper §2.2: the stock watchdog catches nothing at 5 s."""
    watchdog = AnrWatchdog()
    engine = ExecutionEngine(device, seed=3)
    for _ in range(30):
        execution = engine.run_action(k9, k9.action("open_email"))
        assert watchdog.observe(execution) == []
    assert watchdog.events == []


def test_anr_catches_hard_hangs(device, k9):
    watchdog = AnrWatchdog(timeout_ms=300.0)  # artificially tight
    engine = ExecutionEngine(device, seed=3)
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.response_time_ms > 300
    )
    raised = watchdog.observe(execution)
    assert raised
    assert raised[0].app_name == "K9-mail"


def test_anr_validation():
    with pytest.raises(ValueError):
        AnrWatchdog(timeout_ms=0)


def test_service_creates_doctor_per_app(device, k9, andstatus):
    service = OsHangService(device, seed=3)
    engine = ExecutionEngine(device, seed=3)
    service.observe(engine.run_action(k9, k9.action("folders")))
    service.observe(
        engine.run_action(andstatus, andstatus.action("compose"))
    )
    assert service.supervised_apps() == [
        "com.fsck.k9", "org.andstatus.app"
    ]
    assert service.doctor_for(k9) is service.doctor_for(k9)


def test_service_shares_database_across_apps(device):
    """A bug learned from SkyTube's jsoup hang is instantly known for
    every other app the service supervises."""
    service = OsHangService(device, seed=3)
    engine = ExecutionEngine(device, seed=3)
    skytube = get_app("SkyTube")
    for _ in range(30):
        service.observe(
            engine.run_action(skytube, skytube.action("open_video"))
        )
        if "org.jsoup.Jsoup.parse" in service.cross_app_discoveries():
            break
    assert "org.jsoup.Jsoup.parse" in service.cross_app_discoveries()
    uoitdc = get_app("UOITDC Booking")
    doctor = service.doctor_for(uoitdc)
    assert doctor.blocking_db is service.blocking_db


def test_system_report_aggregates(device):
    service = OsHangService(device, seed=3)
    engine = ExecutionEngine(device, seed=3)
    for app_name in ("K9-mail", "SkyTube"):
        app = get_app(app_name)
        for action in app.actions:
            for _ in range(8):
                service.observe(engine.run_action(app, action))
    assert len(service.report.detections) > 0
    by_app = service.report.by_app()
    assert set(by_app) <= {"K9-mail", "SkyTube"}
    text = service.report.render()
    assert "soft hang bug detections" in text


def test_report_by_api_counts(device, k9):
    service = OsHangService(device, seed=3)
    engine = ExecutionEngine(device, seed=3)
    for _ in range(40):
        service.observe(engine.run_action(k9, k9.action("open_email")))
    by_api = service.report.by_api()
    assert by_api.get("org.htmlcleaner.HtmlCleaner.clean", 0) >= 1
