"""Tests for the paper-claim verification machinery."""

import pytest

from repro.harness.paper import (
    Claim,
    PAPER_CLAIMS,
    render_checks,
    verify_claims,
)


def test_tolerance_verdicts():
    claim = Claim("x", "T", 10.0, tolerance=1.0)
    assert claim.verdict(10.5) == "holds"
    assert claim.verdict(11.5) == "close"
    assert claim.verdict(13.0) == "deviates"


def test_directional_verdicts():
    below = Claim("x", "T", 0.1, direction="<=")
    assert below.verdict(0.05) == "holds"
    assert below.verdict(0.2) == "deviates"
    above = Claim("y", "T", 8.0, direction=">=")
    assert above.verdict(16.0) == "holds"
    assert above.verdict(2.0) == "deviates"


def test_registry_covers_headline_numbers():
    keys = set(PAPER_CLAIMS)
    for expected in ("fig1_buggy_ms", "t2_tp_100ms", "t3_top_corr",
                     "t5_bugs", "t6_union", "fig8_hd_tp"):
        assert expected in keys


def test_verify_claims_rejects_unknown_keys():
    with pytest.raises(KeyError):
        verify_claims({"nonsense": 1.0})


def test_verify_claims_partial_set():
    checks = verify_claims({"t5_bugs": 34.0, "t6_union": 23.0})
    assert len(checks) == 2
    assert all(check.verdict == "holds" for check in checks)


def test_render_checks():
    checks = verify_claims({"t5_bugs": 34.0, "fig8_hd_fp": 0.03})
    text = render_checks(checks)
    assert "t5_bugs" in text
    assert "holds" in text


def test_claim_sources_are_paper_locations():
    for claim in PAPER_CLAIMS.values():
        assert claim.source.startswith(("Fig.", "Table"))
