"""The parallel experiment runner and its equivalence guarantees.

Covers the executor primitive itself, the supervisor's failure paths
(worker crashes, deadlines, in-process last resort), the per-app seed
derivation of the fleet study, the explicit merge paths on experiment
results, and the headline guarantee: sharding an experiment across
worker processes changes nothing about its output.
"""

import math
import multiprocessing
import os
import time

import pytest

from repro.detectors.base import MonitoringCost
from repro.detectors.runner import DetectorRun
from repro.harness.exp_comparison import (
    Figure8Result,
    figure8,
    fit_utilization_thresholds,
)
from repro.harness.exp_fleet import (
    Table5Result,
    Table5Row,
    fleet_app_seed,
    table5,
)
from repro.harness.exp_stability import StabilityResult, fleet_stability
from repro.parallel import (
    ExecutionReport,
    chunk_indices,
    parallel_map,
    resolve_workers,
)
from repro.sim.engine import ExecutionEngine
from repro.telemetry import current, export_jsonl, session


# ---------------------------------------------------------------- executor


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _boom_processy(x):
    raise RuntimeError(f"worker process could not fork item {x}")


def test_resolve_workers_defaults_to_cpu_count():
    assert resolve_workers(None) >= 1
    assert resolve_workers(0) == resolve_workers(None)
    assert resolve_workers(3) == 3
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_chunk_indices_partitions_range():
    for count in (0, 1, 5, 7, 114):
        for chunks in (1, 2, 4, 13):
            parts = chunk_indices(count, chunks)
            flat = [i for part in parts for i in part]
            assert flat == list(range(count))
            if count:
                sizes = [len(part) for part in parts]
                assert max(sizes) - min(sizes) <= 1
                assert len(parts) == min(chunks, count)
            else:
                assert parts == []


def test_parallel_map_preserves_order():
    items = list(range(20))
    expected = [_square(i) for i in items]
    assert parallel_map(_square, items, workers=1) == expected
    assert parallel_map(_square, items, workers=4) == expected


def test_parallel_map_falls_back_on_unpicklable_work():
    closure = lambda x: x + 1  # noqa: E731 - deliberately not module-level
    assert parallel_map(closure, [1, 2, 3], workers=4) == [2, 3, 4]


def test_parallel_map_propagates_task_errors():
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_boom, [1, 2], workers=1)
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_boom, [1, 2], workers=2)


def test_parallel_map_propagates_processy_shard_errors():
    """Regression: shard exceptions whose message mentions pool-ish
    words ("process", "fork") used to be string-matched as pool
    startup failures and swallowed into the serial fallback — which
    then re-raised a *different* invocation's error.  Shard errors now
    cross the pool tagged in a sentinel, so the original exception
    propagates no matter what its message says."""
    with pytest.raises(RuntimeError, match="could not fork item"):
        parallel_map(_boom_processy, [1, 2], workers=2)


def test_resolve_workers_rejects_non_integers():
    assert resolve_workers("3") == 3
    for bad in ("x", 2.5, [2]):
        with pytest.raises((ValueError, TypeError)):
            resolve_workers(bad)


def test_parallel_map_workers_exceeding_item_count():
    assert parallel_map(_square, [7], workers=8) == [49]
    assert parallel_map(_square, [], workers=4) == []


# --------------------------------------------------------- supervision


def _die_in_worker(x):
    """Crash the hosting process — but only when it *is* a worker, so
    the supervisor's in-process last resort completes the shard."""
    if x == 13 and multiprocessing.parent_process() is not None:
        os._exit(87)
    return x * x


def _stall_in_worker(x):
    """Outlive any sane deadline — in a worker; instant in-process."""
    if x == 2 and multiprocessing.parent_process() is not None:
        time.sleep(60.0)
    return x * x


def _ordered_boom(x):
    """Item 0's failure finishes *last* so out-of-order completion is
    exercised; the supervisor must still raise item 0's error."""
    if x == 0:
        time.sleep(0.3)
    raise ValueError(f"boom {x}")


def test_supervisor_recovers_from_worker_crash():
    """A worker taken down by SIGKILL-equivalent (os._exit) breaks the
    pool; the supervisor rebuilds it, retries the surviving shards,
    and completes the persistently-crashing one in-process.  Results
    are byte-identical to a clean run and the report says what
    happened instead of downgrading silently."""
    items = list(range(20))
    expected = [x * x for x in items]
    report = ExecutionReport()
    result = parallel_map(_die_in_worker, items, workers=4, report=report)
    assert result == expected
    assert report.worker_crashes >= 1
    assert report.in_process_shards >= 1
    assert report.pool_attempts >= 2
    assert report.degraded
    assert any("crash" in event for event in report.events)


def test_supervisor_deadline_reruns_stalled_shard_in_process():
    items = list(range(4))
    report = ExecutionReport()
    result = parallel_map(_stall_in_worker, items, workers=2,
                          deadline=1.0, report=report)
    assert result == [x * x for x in items]
    assert report.deadline_hits >= 1
    assert report.in_process_shards >= 1
    assert report.degraded


def test_shard_failure_raised_in_submission_order():
    """When several shards fail, the *first submitted* failure wins
    even when a later shard's error arrives earlier."""
    with pytest.raises(ValueError, match="boom 0"):
        parallel_map(_ordered_boom, [0, 1, 2], workers=3)


def test_serial_fallback_is_reported_not_silent():
    closure = lambda x: x + 1  # noqa: E731 - deliberately unpicklable
    report = ExecutionReport()
    assert parallel_map(closure, [1, 2], workers=2, report=report) == [2, 3]
    assert report.serial_fallbacks == 1
    assert report.degraded
    assert any("serial" in event for event in report.events)


def test_on_result_hook_fires_per_shard_with_original_index():
    seen = {}
    parallel_map(_square, [3, 4, 5], workers=2,
                 on_result=lambda i, v: seen.setdefault(i, v))
    assert seen == {0: 9, 1: 16, 2: 25}
    seen.clear()
    parallel_map(_square, [3, 4], workers=1,
                 on_result=lambda i, v: seen.setdefault(i, v))
    assert seen == {0: 9, 1: 16}


def test_execution_report_merge_and_describe():
    clean = ExecutionReport()
    assert not clean.degraded
    assert "clean" in clean.describe()
    other = ExecutionReport(shards=3, worker_crashes=1, checkpoint_hits=2,
                            events=["worker-crash: pool broke"])
    merged = ExecutionReport(shards=1).merge(other)
    assert merged.shards == 4
    assert merged.worker_crashes == 1
    assert merged.checkpoint_hits == 2
    assert merged.degraded
    text = merged.describe()
    assert "worker crash" in text or "crash" in text
    assert "pool broke" in text


def _traced_die_in_worker(x):
    """Crash the worker on item 13 *after* it recorded telemetry in an
    earlier attempt's doomed process; the retried/in-process run's
    records are the only ones that reach the parent."""
    tel = current()
    with tel.track(f"work/{x}"):
        tel.count("work.calls")
        if x == 13 and multiprocessing.parent_process() is not None:
            os._exit(87)
        tel.record_span("work.compute", float(x), float(x) + 1.0)
    return x * x


def test_telemetry_unperturbed_by_worker_crashes():
    """Supervision noise (crashes, retries, pool rebuilds) lands on the
    advisory channel only: the deterministic export equals a clean
    serial run's even when workers died mid-sweep."""
    items = list(range(20))
    with session() as clean:
        assert parallel_map(_traced_die_in_worker, items, workers=1) \
            == [x * x for x in items]
    report = ExecutionReport()
    with session() as crashed:
        result = parallel_map(_traced_die_in_worker, items, workers=4,
                              report=report)
    assert result == [x * x for x in items]
    assert report.worker_crashes >= 1
    assert export_jsonl(crashed) == export_jsonl(clean)
    assert any(name == "executor.worker-crash"
               for name, _ in crashed.advisory)


def test_parallel_map_validates_shard_tracks_length():
    with session():
        with pytest.raises(ValueError, match="one shard track per item"):
            parallel_map(_square, [1, 2], workers=1, shard_tracks=["only"])


# ------------------------------------------------------- per-app seeding


def test_fleet_app_seed_distinct_per_app_and_root():
    assert fleet_app_seed(0, "K9-mail") != fleet_app_seed(0, "AndStatus")
    assert fleet_app_seed(0, "K9-mail") != fleet_app_seed(1, "K9-mail")
    assert fleet_app_seed(3, "GenApp-001") == fleet_app_seed(3, "GenApp-001")


def test_distinct_apps_draw_distinct_noise(device, k9):
    """Regression: the fleet once seeded every app's engine with the
    same root seed, cross-correlating all 114 apps' RNG streams."""
    action = k9.actions[0]
    engine_a = ExecutionEngine(device, seed=fleet_app_seed(0, "K9-mail"))
    engine_b = ExecutionEngine(device, seed=fleet_app_seed(0, "AndStatus"))
    times_a = [engine_a.run_action(k9, action).response_time_ms
               for _ in range(5)]
    times_b = [engine_b.run_action(k9, action).response_time_ms
               for _ in range(5)]
    assert times_a != times_b


# ------------------------------------------------------------ merge paths


def _t5_row(name, detected=1, missed=0):
    return Table5Row(
        app_name=name, category="Tools", downloads=10, commit="abc",
        issue_id=1, bugs_detected=detected, missed_offline=missed,
        ground_truth_bugs=detected,
    )


def test_table5_merge_concatenates_and_dedupes_discoveries():
    part_a = Table5Result(
        rows=[_t5_row("A")], apps_tested=2, clean_apps_flagged=0,
        new_blocking_apis=["x.y.Z", "p.q.R"],
    )
    part_b = Table5Result(
        rows=[_t5_row("B")], apps_tested=3, clean_apps_flagged=1,
        new_blocking_apis=["p.q.R", "m.n.O"],
    )
    merged = Table5Result.merge([part_a, part_b])
    assert [row.app_name for row in merged.rows] == ["A", "B"]
    assert merged.apps_tested == 5
    assert merged.clean_apps_flagged == 1
    assert merged.new_blocking_apis == ["x.y.Z", "p.q.R", "m.n.O"]


def test_table5_missed_offline_percent_nan_when_empty():
    empty = Table5Result(rows=[], apps_tested=4, clean_apps_flagged=0,
                         new_blocking_apis=[])
    assert math.isnan(empty.missed_offline_percent)
    assert "n/a of detected bugs" in empty.render()


def test_detector_run_merge_sums_costs_in_order():
    run_a = DetectorRun(detector_name="HD", executions=["e1"],
                        outcomes=["o1"],
                        cost=MonitoringCost(rt_events=2, trace_samples=5))
    run_b = DetectorRun(detector_name="HD", executions=["e2"],
                        outcomes=["o2"],
                        cost=MonitoringCost(rt_events=3, analyses=1))
    merged = DetectorRun.merge([run_a, run_b])
    assert merged.executions == ["e1", "e2"]
    assert merged.outcomes == ["o1", "o2"]
    assert merged.cost.rt_events == 5
    assert merged.cost.trace_samples == 5
    assert merged.cost.analyses == 1
    with pytest.raises(ValueError):
        DetectorRun.merge([run_a, DetectorRun(detector_name="TI")])
    with pytest.raises(ValueError):
        DetectorRun.merge([])


def test_stability_merge_concatenates_seed_order():
    part_a = StabilityResult(metrics={"m": [1.0]}, seeds=(3,))
    part_b = StabilityResult(metrics={"m": [2.0]}, seeds=(7,))
    merged = StabilityResult.merge([part_a, part_b])
    assert merged.metrics == {"m": [1.0, 2.0]}
    assert merged.seeds == (3, 7)
    with pytest.raises(ValueError):
        StabilityResult.merge(
            [part_a, StabilityResult(metrics={"other": [1.0]}, seeds=(5,))]
        )
    assert StabilityResult.merge([]).seeds == ()


def test_figure8_merge_concatenates_apps():
    part = Figure8Result(apps=["a", "b"])
    merged = Figure8Result.merge([part, Figure8Result(apps=["c"])])
    assert merged.apps == ["a", "b", "c"]


# -------------------------------------------- parallel-equals-serial


@pytest.fixture(scope="module")
def small_fleet_serial(device):
    return table5(device, seed=0, users=1, actions_per_user=10,
                  corpus_size=22, workers=1)


@pytest.mark.parametrize("workers", [2, 4])
def test_table5_parallel_equals_serial(device, small_fleet_serial, workers):
    parallel = table5(device, seed=0, users=1, actions_per_user=10,
                      corpus_size=22, workers=workers)
    assert parallel.render() == small_fleet_serial.render()


def test_table5_repeated_runs_deterministic(device, small_fleet_serial):
    again = table5(device, seed=0, users=1, actions_per_user=10,
                   corpus_size=22, workers=1)
    assert again.render() == small_fleet_serial.render()


def test_figure8_parallel_equals_serial(device):
    thresholds = fit_utilization_thresholds(device, seed=5, runs_per_case=2)
    kwargs = dict(seed=5, users=1, actions_per_user=8,
                  app_names=("K9-mail", "AndStatus"), thresholds=thresholds)
    serial = figure8(device, workers=1, **kwargs)
    parallel = figure8(device, workers=2, **kwargs)
    assert parallel.render() == serial.render()


def test_fleet_stability_parallel_equals_serial(device):
    kwargs = dict(seeds=(1, 2), users=1, actions_per_user=8,
                  corpus_size=22)
    serial = fleet_stability(device, workers=1, **kwargs)
    parallel = fleet_stability(device, workers=2, **kwargs)
    assert parallel.render() == serial.render()
    assert parallel.seeds == (1, 2)


# ----------------------------------------------------- reclaim mode


def _sleepy_square(x):
    """Slow-but-progressing work: every shard takes real time but
    none of them is stalled."""
    if multiprocessing.parent_process() is not None:
        time.sleep(0.6)
    return x * x


def _stall_one_sleep_rest(x):
    """Item 0 stalls outright; the rest are merely slow."""
    if multiprocessing.parent_process() is not None:
        time.sleep(60.0 if x == 0 else 0.6)
    return x * x


def test_reclaim_serial_path_completes_everything():
    from repro.parallel import PartialResult

    partial = parallel_map(_square, [1, 2, 3], workers=1, reclaim=True)
    assert isinstance(partial, PartialResult)
    assert partial.values == {0: 1, 1: 4, 2: 9}
    assert partial.unfinished == ()


def test_reclaim_returns_crashed_shards_unfinished():
    """Reclaim mode hands worker-death casualties back to the caller
    instead of rebuilding the pool: exactly one attempt runs."""
    report = ExecutionReport()
    partial = parallel_map(_die_in_worker, list(range(20)), workers=4,
                           report=report, reclaim=True)
    assert 13 in partial.crashed
    assert all(partial.values[i] == i * i for i in partial.values)
    assert report.pool_attempts == 1
    assert report.in_process_shards == 0


def test_reclaim_returns_stalled_shards_unfinished():
    report = ExecutionReport()
    partial = parallel_map(_stall_in_worker, list(range(4)), workers=2,
                           deadline=1.0, report=report, reclaim=True)
    assert partial.stalled == (2,)
    assert set(partial.values) == {0, 1, 3}
    assert report.deadline_hits == 1
    assert report.in_process_shards == 0


def test_reclaim_propagates_task_errors():
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_boom, [1, 2], workers=2, reclaim=True)


def test_deadline_measured_from_submission_not_drain_order():
    """Regression: the drain loop waits on futures in index order, and
    the per-shard deadline used to start ticking only when a shard's
    *turn* came — so a slow-but-progressing pool granted a stalled
    shard one fresh deadline per earlier slow shard.  The deadline now
    measures from submission: the stalled shard times out once, about
    one deadline after the map started, no matter how many slow shards
    drained before it."""
    report = ExecutionReport()
    start = time.monotonic()
    partial = parallel_map(_stall_one_sleep_rest, list(range(4)),
                           workers=4, deadline=1.2, report=report,
                           reclaim=True)
    elapsed = time.monotonic() - start
    assert partial.stalled == (0,)
    assert set(partial.values) == {1, 2, 3}
    assert report.deadline_hits == 1
    # Old behaviour: item 0 is first in drain order, gets a full 1.2s,
    # times out, then items 1..3 drain — fine.  But reverse the stall
    # and every slow shard's wait would have extended the stalled
    # one's budget.  The submission-measured deadline bounds the whole
    # call near one deadline (plus slack for pool startup).
    assert elapsed < 5.0
    assert any("since submission" in event for event in report.events)


def test_slow_but_progressing_pool_grants_one_deadline_total():
    """The sharper half of the regression: the *stalled* shard drains
    last, after three slow shards, and must still be declared stalled
    — its elapsed time already exceeds the deadline when its turn
    comes, so the wait is (near) zero rather than a fresh 1.2s."""
    report = ExecutionReport()
    start = time.monotonic()
    partial = parallel_map(_stall_last_sleep_rest, list(range(4)),
                           workers=4, deadline=1.2, report=report,
                           reclaim=True)
    elapsed = time.monotonic() - start
    assert partial.stalled == (3,)
    assert report.deadline_hits == 1
    # With drain-order deadlines this would take ~0.6 (slow shards)
    # + 1.2 (fresh deadline for the stalled one) at minimum, and the
    # stalled shard historically got up to three extra grants.  From
    # submission it is ~max(0.6, 1.2) + startup slack.
    assert elapsed < 3.0


def _stall_last_sleep_rest(x):
    """Highest index stalls; earlier indices are slow, so the stalled
    shard's turn in the index-ordered drain comes last."""
    if multiprocessing.parent_process() is not None:
        time.sleep(60.0 if x == 3 else 0.6)
    return x * x


# ------------------------------------- report merge algebra


def _report(tag, **counters):
    report = ExecutionReport(events=[f"{tag}: event"], **counters)
    return report


def _snapshot(report):
    payload = report.to_dict()
    payload["events"] = sorted(payload["events"])
    return payload


def test_report_merge_is_associative_and_commutative_up_to_events():
    """Counters merge as sums and events as a multiset, so merging
    shard reports in any grouping or order yields the same account —
    what lets the scheduler fold per-round reports freely."""
    reports = [
        _report("a", shards=3, steals=2, worker_crashes=1),
        _report("b", reshards=4, churn_events=2, deadline_hits=1),
        _report("c", checkpoint_hits=5, torn_writes=1, shard_retries=2),
    ]

    def merged(order):
        total = ExecutionReport()
        for index in order:
            clone = ExecutionReport(**{
                key: value for key, value in
                reports[index].to_dict().items()
                if key not in ("degraded",)
            })
            total.merge(clone)
        return _snapshot(total)

    baseline = merged([0, 1, 2])
    # Commutativity (up to event order): every permutation agrees.
    assert merged([2, 1, 0]) == baseline
    assert merged([1, 0, 2]) == baseline
    # Associativity: (a + b) + c == a + (b + c), field for field.
    left = ExecutionReport().merge(reports[0]).merge(reports[1])
    left.merge(reports[2])
    right_tail = ExecutionReport().merge(reports[1]).merge(reports[2])
    right = ExecutionReport().merge(reports[0]).merge(right_tail)
    assert _snapshot(left) == _snapshot(right)


def test_report_new_counters_round_trip_and_describe():
    report = ExecutionReport(steals=2, reshards=3, churn_events=4)
    payload = report.to_dict()
    assert payload["steals"] == 2
    assert payload["reshards"] == 3
    assert payload["churn_events"] == 4
    text = report.describe()
    assert "stolen" in text
    assert "resharded" in text
    assert "churn" in text
    # Scheduling activity is advisory: it never flips degraded.
    assert not report.degraded
