"""Tests for repro.core.persistence (JSON round-trips, merging)."""

import json

import pytest

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.persistence import (
    database_from_json,
    database_to_json,
    detection_to_record,
    merge_reports,
    report_from_json,
    report_to_json,
)
from repro.core.report import HangBugReport


def make_report(app="K9-mail", device=0, occurrences=2):
    report = HangBugReport(app)
    for _ in range(occurrences):
        report.record(
            operation="org.htmlcleaner.HtmlCleaner.clean",
            file="HtmlCleaner.java", line=291, is_self_developed=False,
            response_time_ms=1300.0, occurrence_factor=0.96,
            device_id=device,
        )
    return report


def test_report_roundtrip():
    original = make_report()
    restored = report_from_json(report_to_json(original))
    assert restored.app_name == original.app_name
    assert len(restored) == len(original)
    entry = restored.entries()[0]
    assert entry.operation == "org.htmlcleaner.HtmlCleaner.clean"
    assert entry.occurrences == 2
    assert entry.mean_hang_ms == pytest.approx(1300.0)


def test_report_json_is_valid_json():
    payload = json.loads(report_to_json(make_report()))
    assert payload["schema"] == 1
    assert payload["app"] == "K9-mail"


def test_report_schema_check():
    payload = json.loads(report_to_json(make_report()))
    payload["schema"] = 99
    with pytest.raises(ValueError):
        report_from_json(json.dumps(payload))


def test_merge_reports_sums_occurrences():
    merged = merge_reports([
        make_report(device=0, occurrences=3),
        make_report(device=1, occurrences=2),
    ])
    entry = merged.entries()[0]
    assert entry.occurrences == 5
    assert entry.devices == {0, 1}


def test_merge_reports_rejects_mixed_apps():
    with pytest.raises(ValueError):
        merge_reports([make_report("A"), make_report("B")])


def test_merge_reports_explicit_name():
    merged = merge_reports([make_report("A"), make_report("B")],
                           app_name="Fleet")
    assert merged.app_name == "Fleet"


def test_merge_requires_input():
    with pytest.raises(ValueError):
        merge_reports([])


def test_database_roundtrip():
    db = BlockingApiDatabase.initial()
    db.add("org.htmlcleaner.HtmlCleaner.clean")
    restored = database_from_json(database_to_json(db))
    assert restored.names() == db.names()
    assert restored.runtime_discoveries() == db.runtime_discoveries()


def test_database_schema_check():
    payload = json.loads(database_to_json(BlockingApiDatabase.initial()))
    payload["schema"] = 0
    with pytest.raises(ValueError):
        database_from_json(json.dumps(payload))


def test_detection_record_is_anonymized(device, k9):
    """The telemetry record carries only the fields the paper's
    privacy note allows — no action names, no payloads."""
    from repro.core.hang_doctor import HangDoctor
    from repro.sim.engine import ExecutionEngine

    engine = ExecutionEngine(device, seed=21)
    doctor = HangDoctor(k9, device, seed=21)
    record = None
    for _ in range(40):
        outcome = doctor.process(
            engine.run_action(k9, k9.action("open_email"))
        )
        if outcome.detections:
            record = detection_to_record(outcome.detections[0], device_id=7)
            break
    assert record is not None
    assert set(record) == {
        "operation", "file", "line", "self_developed",
        "response_time_ms", "occurrence_factor", "device",
    }
    assert record["operation"] == "org.htmlcleaner.HtmlCleaner.clean"
    assert record["device"] == 7
