"""Tests for repro.core.persistence (JSON round-trips, merging, and
recovery from malformed state files)."""

import json

import pytest

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.persistence import (
    database_from_json,
    database_to_json,
    detection_to_record,
    load_database,
    load_report,
    merge_reports,
    report_from_json,
    report_to_json,
)
from repro.core.report import HangBugReport
from repro.faults import FaultInjector, FaultPlan


def make_report(app="K9-mail", device=0, occurrences=2):
    report = HangBugReport(app)
    for _ in range(occurrences):
        report.record(
            operation="org.htmlcleaner.HtmlCleaner.clean",
            file="HtmlCleaner.java", line=291, is_self_developed=False,
            response_time_ms=1300.0, occurrence_factor=0.96,
            device_id=device,
        )
    return report


def test_report_roundtrip():
    original = make_report()
    restored = report_from_json(report_to_json(original))
    assert restored.app_name == original.app_name
    assert len(restored) == len(original)
    entry = restored.entries()[0]
    assert entry.operation == "org.htmlcleaner.HtmlCleaner.clean"
    assert entry.occurrences == 2
    assert entry.mean_hang_ms == pytest.approx(1300.0)


def test_report_json_is_valid_json():
    payload = json.loads(report_to_json(make_report()))
    assert payload["schema"] == 1
    assert payload["app"] == "K9-mail"


def test_report_schema_check():
    payload = json.loads(report_to_json(make_report()))
    payload["schema"] = 99
    with pytest.raises(ValueError):
        report_from_json(json.dumps(payload))


@pytest.mark.parametrize("breakage", ["", "not json at all", "[1, 2]"])
def test_report_invalid_json_raises_valueerror(breakage):
    with pytest.raises(ValueError):
        report_from_json(breakage)


def test_report_truncated_file_raises_valueerror():
    """A crash mid-write leaves a prefix of the payload on disk."""
    text = report_to_json(make_report())
    for cut in (0, 1, len(text) // 2, len(text) - 1):
        with pytest.raises(ValueError):
            report_from_json(text[:cut])


@pytest.mark.parametrize("key", [
    "operation", "file", "line", "self_developed", "occurrences",
    "devices", "total_hang_ms", "max_occurrence_factor",
])
def test_report_missing_entry_field_names_the_key(key):
    payload = json.loads(report_to_json(make_report()))
    del payload["entries"][0][key]
    with pytest.raises(ValueError, match=f"missing required key '{key}'"):
        report_from_json(json.dumps(payload))


def test_report_missing_top_level_field_names_the_key():
    payload = json.loads(report_to_json(make_report()))
    del payload["app"]
    with pytest.raises(ValueError, match="missing required key 'app'"):
        report_from_json(json.dumps(payload))
    payload = json.loads(report_to_json(make_report()))
    payload["entries"] = ["not-an-object"]
    with pytest.raises(ValueError, match="expected an object"):
        report_from_json(json.dumps(payload))


def test_report_degradations_roundtrip():
    original = make_report()
    original.note_degradation("timeout-only", detail="counters lost",
                              time_ms=1234.5)
    restored = report_from_json(report_to_json(original))
    assert len(restored.degradations) == 1
    record = restored.degradations[0]
    assert record.kind == "timeout-only"
    assert record.detail == "counters lost"
    assert record.time_ms == 1234.5
    assert "degraded: timeout-only" in restored.render()


def test_load_report_recovers_from_corruption():
    good = report_to_json(make_report())
    restored = load_report(good, "K9-mail")
    assert not restored.recovered_from_corruption
    assert len(restored) == 1
    for corrupt in (good[: len(good) // 2], "", "%%%"):
        fresh = load_report(corrupt, "K9-mail")
        assert fresh.recovered_from_corruption
        assert fresh.app_name == "K9-mail"
        assert len(fresh) == 0
        assert "recovered from a corrupt report file" in fresh.render()


def test_load_report_through_fault_injector():
    injector = FaultInjector(FaultPlan(persistence_corrupt_rate=1.0), seed=3)
    restored = load_report(report_to_json(make_report()), "K9-mail",
                           faults=injector)
    assert restored.recovered_from_corruption
    assert injector.fired_total() == 1


def test_merge_reports_sums_occurrences():
    merged = merge_reports([
        make_report(device=0, occurrences=3),
        make_report(device=1, occurrences=2),
    ])
    entry = merged.entries()[0]
    assert entry.occurrences == 5
    assert entry.devices == {0, 1}


def test_merge_reports_rejects_mixed_apps():
    with pytest.raises(ValueError):
        merge_reports([make_report("A"), make_report("B")])


def test_merge_reports_explicit_name():
    merged = merge_reports([make_report("A"), make_report("B")],
                           app_name="Fleet")
    assert merged.app_name == "Fleet"


def test_merge_requires_input():
    with pytest.raises(ValueError):
        merge_reports([])


def test_database_roundtrip():
    db = BlockingApiDatabase.initial()
    db.add("org.htmlcleaner.HtmlCleaner.clean")
    restored = database_from_json(database_to_json(db))
    assert restored.names() == db.names()
    assert restored.runtime_discoveries() == db.runtime_discoveries()


def test_database_schema_check():
    payload = json.loads(database_to_json(BlockingApiDatabase.initial()))
    payload["schema"] = 0
    with pytest.raises(ValueError):
        database_from_json(json.dumps(payload))


def test_merge_reports_carries_degradations_and_recovery():
    part_a = make_report(device=0)
    part_a.note_degradation("timeout-only", detail="counters lost")
    part_b = load_report("corrupt{", "K9-mail")
    merged = merge_reports([part_a, part_b])
    assert [record.kind for record in merged.degradations] == ["timeout-only"]
    assert merged.recovered_from_corruption


def test_database_invalid_json_raises_valueerror():
    with pytest.raises(ValueError):
        database_from_json("{broken")
    with pytest.raises(ValueError):
        database_from_json("[]")


def test_database_missing_field_names_the_key():
    payload = json.loads(database_to_json(BlockingApiDatabase.initial()))
    del payload["names"]
    with pytest.raises(ValueError, match="missing required key 'names'"):
        database_from_json(json.dumps(payload))
    payload["names"] = "not-a-list"
    with pytest.raises(ValueError, match="'names' must be a list"):
        database_from_json(json.dumps(payload))


def test_load_database_recovers_to_shipped_initial():
    db = BlockingApiDatabase.initial()
    db.add("org.htmlcleaner.HtmlCleaner.clean")
    good = database_to_json(db)
    assert load_database(good).names() == db.names()
    assert not load_database(good).recovered_from_corruption
    recovered = load_database(good[: len(good) // 2])
    assert recovered.recovered_from_corruption
    # The curated expert list survives; only runtime discoveries since
    # the last good write are lost.
    assert recovered.names() == BlockingApiDatabase.initial().names()
    assert recovered.runtime_discoveries() == []


def test_detection_record_is_anonymized(device, k9):
    """The telemetry record carries only the fields the paper's
    privacy note allows — no action names, no payloads."""
    from repro.core.hang_doctor import HangDoctor
    from repro.sim.engine import ExecutionEngine

    engine = ExecutionEngine(device, seed=21)
    doctor = HangDoctor(k9, device, seed=21)
    record = None
    for _ in range(40):
        outcome = doctor.process(
            engine.run_action(k9, k9.action("open_email"))
        )
        if outcome.detections:
            record = detection_to_record(outcome.detections[0], device_id=7)
            break
    assert record is not None
    assert set(record) == {
        "operation", "file", "line", "self_developed",
        "response_time_ms", "occurrence_factor", "device",
    }
    assert record["operation"] == "org.htmlcleaner.HtmlCleaner.clean"
    assert record["device"] == 7


# ------------------------------------------------- crash-atomic writes


def test_atomic_write_replaces_whole_file(tmp_path):
    from repro.core.persistence import atomic_write_bytes, atomic_write_text

    target = tmp_path / "nested" / "state.json"
    atomic_write_text(target, '{"v": 1}')  # creates parent dirs
    atomic_write_bytes(target, b'{"v": 2}')
    assert target.read_text() == '{"v": 2}'
    assert list(target.parent.iterdir()) == [target]  # no temp litter


def test_atomic_write_torn_by_injector_keeps_old_state(tmp_path):
    from repro.core.persistence import atomic_write_text
    from repro.faults import TornWriteError

    target = tmp_path / "report.json"
    atomic_write_text(target, "old")
    injector = FaultInjector(FaultPlan(torn_write_rate=1.0), seed=0)
    with pytest.raises(TornWriteError):
        atomic_write_text(target, "new", faults=injector, label="report")
    assert target.read_text() == "old"


def test_save_and_load_report_round_trip_on_disk(tmp_path):
    from repro.core.persistence import save_report

    path = tmp_path / "report.json"
    save_report(path, make_report())
    restored = load_report(path.read_text(), "K9-mail")
    assert not restored.recovered_from_corruption
    assert len(restored) == len(make_report())


def test_save_and_load_database_round_trip_on_disk(tmp_path):
    from repro.core.persistence import save_database

    db = BlockingApiDatabase.initial()
    db.add("org.htmlcleaner.HtmlCleaner.clean")
    path = tmp_path / "db.json"
    save_database(path, db)
    assert database_from_json(path.read_text()).names() == db.names()
