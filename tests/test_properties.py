"""Property-based tests (hypothesis) on core data structures."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.correlation import CounterSample, pearson
from repro.analysis.thresholds import FilterFit, fit_filter, fit_threshold
from repro.base.frames import Frame, StackTrace, occurrence_factor
from repro.core.states import ActionState, ActionStateMachine
from repro.sim.timeline import MAIN_THREAD, Segment, Timeline

# ---------------------------------------------------------------------------
# Timeline invariants
# ---------------------------------------------------------------------------

segments_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e4),      # start
        st.floats(min_value=0.01, max_value=500.0),    # duration
        st.floats(min_value=0.0, max_value=1e6),       # count
    ),
    min_size=1,
    max_size=12,
)


def build_timeline(raw):
    timeline = Timeline()
    for start, duration, count in sorted(raw, key=lambda r: r[0]):
        timeline.add(
            Segment(
                thread=MAIN_THREAD, start_ms=start,
                end_ms=start + duration, counts={"x": count},
            )
        )
    return timeline


@given(segments_strategy)
def test_full_window_total_equals_sum(raw):
    timeline = build_timeline(raw)
    assert math.isclose(
        timeline.total(MAIN_THREAD, "x"),
        sum(count for _, _, count in raw),
        rel_tol=1e-9, abs_tol=1e-6,
    )


@given(segments_strategy, st.floats(min_value=0.0, max_value=2e4))
def test_window_split_is_additive(raw, split):
    """total(a, b) + total(b, c) == total(a, c)."""
    timeline = build_timeline(raw)
    lo, hi = timeline.start_ms, timeline.end_ms
    split = min(max(split, lo), hi)
    left = timeline.total(MAIN_THREAD, "x", lo, split)
    right = timeline.total(MAIN_THREAD, "x", split, hi)
    whole = timeline.total(MAIN_THREAD, "x", lo, hi)
    assert math.isclose(left + right, whole, rel_tol=1e-9, abs_tol=1e-6)


@given(segments_strategy,
       st.floats(min_value=0.0, max_value=1e4),
       st.floats(min_value=0.0, max_value=1e4))
def test_window_totals_monotone(raw, a, b):
    """A larger window never has a smaller total."""
    timeline = build_timeline(raw)
    lo, hi = min(a, b), max(a, b)
    inner = timeline.total(MAIN_THREAD, "x", lo, hi)
    outer = timeline.total(MAIN_THREAD, "x", lo - 100.0, hi + 100.0)
    assert outer >= inner - 1e-9


# ---------------------------------------------------------------------------
# Occurrence factor
# ---------------------------------------------------------------------------

frame_strategy = st.builds(
    Frame,
    clazz=st.sampled_from(["a.B", "c.D", "e.F"]),
    method=st.sampled_from(["m1", "m2", "m3"]),
    file=st.just("F.java"),
    line=st.integers(min_value=1, max_value=10),
)

traces_strategy = st.lists(
    st.builds(
        StackTrace,
        time_ms=st.floats(min_value=0, max_value=100),
        frames=st.lists(frame_strategy, max_size=4).map(tuple),
    ),
    max_size=20,
)


@given(traces_strategy, frame_strategy)
def test_occurrence_factor_bounded(traces, frame):
    factor = occurrence_factor(traces, frame)
    assert 0.0 <= factor <= 1.0


@given(traces_strategy, frame_strategy)
def test_occurrence_factor_counts_exactly(traces, frame):
    factor = occurrence_factor(traces, frame)
    if traces:
        manual = sum(frame in t.frames for t in traces) / len(traces)
        assert math.isclose(factor, manual)


# ---------------------------------------------------------------------------
# Threshold fitting
# ---------------------------------------------------------------------------

samples_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-1e3, max_value=1e3),
        st.booleans(),
    ),
    min_size=2,
    max_size=30,
).filter(lambda rows: any(label for _, label in rows))


@given(samples_strategy)
def test_fit_threshold_cost_is_optimal_among_candidates(rows):
    samples = [
        CounterSample(values={"e": value}, is_hang_bug=label)
        for value, label in rows
    ]
    threshold, cost = fit_threshold(samples, "e")
    # Recompute cost at the chosen threshold; must match and be the
    # minimum over a dense grid of alternatives.
    def cost_at(t):
        fn = sum(1 for s in samples
                 if s.is_hang_bug and s.values["e"] <= t)
        fp = sum(1 for s in samples
                 if not s.is_hang_bug and s.values["e"] > t)
        return 2.0 * fn + fp

    assert math.isclose(cost, cost_at(threshold))
    values = sorted({s.values["e"] for s in samples})
    for candidate in values:
        assert cost <= cost_at(candidate - 1e-9) + 1e-9
        assert cost <= cost_at(candidate + 1e-9) + 1e-9


@given(samples_strategy)
def test_fit_filter_covers_all_bugs_given_enough_events(rows):
    samples = [
        CounterSample(values={"e": value, "marker": 1.0 if label else -1.0},
                      is_hang_bug=label)
        for value, label in rows
    ]
    fit = fit_filter(samples, ["e", "marker"])
    _, _, fn, _ = fit.confusion(samples)
    assert fn == 0


@given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                       st.floats(min_value=-10, max_value=10),
                       min_size=1))
def test_filter_fires_iff_some_event_exceeds(values):
    fit = FilterFit(thresholds={"a": 0.0, "b": 1.0})
    expected = values.get("a", 0.0) > 0.0 or values.get("b", 0.0) > 1.0
    assert fit.fires(values) == expected


# ---------------------------------------------------------------------------
# Pearson correlation
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3),
                min_size=2, max_size=50))
def test_pearson_bounded(xs):
    ys = [x * 0.5 + 1.0 for x in xs]
    value = pearson(xs, ys)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


@given(st.lists(st.tuples(st.floats(min_value=-1e3, max_value=1e3),
                          st.floats(min_value=-1e3, max_value=1e3)),
                min_size=2, max_size=50))
def test_pearson_symmetric(pairs):
    xs = [a for a, _ in pairs]
    ys = [b for _, b in pairs]
    assert math.isclose(pearson(xs, ys), pearson(ys, xs),
                        rel_tol=1e-9, abs_tol=1e-9)


# ---------------------------------------------------------------------------
# State machine
# ---------------------------------------------------------------------------

_EVENTS = st.lists(
    st.sampled_from(["hang_symptomatic", "hang_clean", "hang_bug_confirmed",
                     "hang_ui_diagnosed", "quiet"]),
    max_size=60,
)


@given(_EVENTS)
@settings(max_examples=60)
def test_state_machine_never_reaches_illegal_state(events):
    """Drive the machine with the component decision sequence Hang
    Doctor would generate; every intermediate state must be legal and
    Hang Bug must be absorbing."""
    machine = ActionStateMachine(reset_period=4)
    machine.register(1)
    was_hang_bug = False
    for event in events:
        state = machine.state(1)
        if was_hang_bug:
            assert state is ActionState.HANG_BUG
        if state is ActionState.UNCATEGORIZED:
            if event == "hang_symptomatic":
                machine.transition(1, ActionState.SUSPICIOUS, "S-Checker")
            elif event == "hang_clean":
                machine.transition(1, ActionState.NORMAL, "S-Checker")
        elif state is ActionState.NORMAL:
            machine.note_normal_execution(1)
        elif state is ActionState.SUSPICIOUS:
            if event == "hang_bug_confirmed":
                machine.transition(1, ActionState.HANG_BUG, "Diagnoser")
                was_hang_bug = True
            elif event == "hang_ui_diagnosed":
                machine.transition(1, ActionState.NORMAL, "Diagnoser")
        assert machine.state(1) in ActionState
