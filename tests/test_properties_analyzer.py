"""Property-based tests for the trace analyzer."""

from hypothesis import given, settings, strategies as st

from repro.base.frames import Frame, StackTrace
from repro.core.trace_analyzer import TraceAnalyzer

frames = st.builds(
    Frame,
    clazz=st.sampled_from([
        "android.widget.TextView", "android.view.View",
        "org.lib.Parser", "com.app.Worker", "java.io.FileInputStream",
    ]),
    method=st.sampled_from(["a", "b", "c"]),
    file=st.just("F.java"),
    line=st.integers(min_value=1, max_value=5),
)

stacks = st.lists(frames, min_size=0, max_size=4).map(tuple)

trace_lists = st.lists(
    st.builds(StackTrace, time_ms=st.floats(min_value=0, max_value=100),
              frames=stacks),
    max_size=25,
)


@given(trace_lists)
@settings(max_examples=100)
def test_analyzer_total_function(traces):
    """The analyzer never raises and produces consistent fields."""
    diagnosis = TraceAnalyzer(app_package="com.app").analyze(traces)
    assert diagnosis.trace_count == len(traces)
    assert 0.0 <= diagnosis.occurrence <= 1.0
    if diagnosis.root is None:
        assert not diagnosis.is_hang_bug
        assert not diagnosis.is_ui
    else:
        # The root frame must come from the traces themselves.
        all_frames = {f for t in traces for f in t.frames}
        assert diagnosis.root in all_frames
        # UI classification matches the frame's class.
        from repro.apps.api import is_ui_class

        assert diagnosis.is_ui == is_ui_class(diagnosis.root.clazz)
        assert diagnosis.is_hang_bug == (not diagnosis.is_ui)
        assert diagnosis.is_self_developed == diagnosis.root.clazz.startswith(
            "com.app"
        )


@given(trace_lists)
@settings(max_examples=60)
def test_analyzer_occurrence_matches_root(traces):
    diagnosis = TraceAnalyzer().analyze(traces)
    if diagnosis.root is not None and traces:
        manual = sum(
            1 for t in traces if diagnosis.root in t.frames
        ) / len(traces)
        assert abs(diagnosis.occurrence - manual) < 1e-9


@given(frames, st.integers(min_value=1, max_value=30))
@settings(max_examples=50)
def test_unanimous_traces_give_full_occurrence(frame, count):
    traces = [StackTrace(time_ms=float(i), frames=(frame,))
              for i in range(count)]
    diagnosis = TraceAnalyzer().analyze(traces)
    assert diagnosis.root == frame
    assert diagnosis.occurrence == 1.0


@given(trace_lists, st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=60)
def test_caller_field_consistency(traces, threshold):
    diagnosis = TraceAnalyzer(occurrence_threshold=threshold).analyze(traces)
    if diagnosis.caller is not None:
        # The caller must appear directly above the root in some trace.
        found = False
        for trace in traces:
            for index in range(1, len(trace.frames)):
                if (trace.frames[index] == diagnosis.root
                        and trace.frames[index - 1] == diagnosis.caller):
                    found = True
        assert found
