"""Property-based tests over randomly generated apps.

Hypothesis builds arbitrary (legal) app specs; the execution engine
must uphold its invariants on all of them: event ordering, response
times, counter non-negativity, ground-truth consistency.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.apps.api import ApiKind, ApiSpec
from repro.apps.app import ActionSpec, AppSpec, InputEventSpec, Operation
from repro.sim.device import LG_V10
from repro.sim.engine import ExecutionEngine
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD

api_strategy = st.builds(
    ApiSpec,
    name=st.sampled_from(["alpha", "beta", "gamma", "delta"]),
    clazz=st.sampled_from([
        "android.widget.TextView", "android.view.View",
        "com.example.Worker", "java.io.FileInputStream",
    ]),
    kind=st.sampled_from(list(ApiKind)),
    mean_ms=st.floats(min_value=1.0, max_value=800.0),
    sigma=st.floats(min_value=0.05, max_value=0.6),
    manifest_prob=st.floats(min_value=0.0, max_value=1.0),
    fast_ms=st.floats(min_value=0.1, max_value=20.0),
    cpu_share=st.floats(min_value=0.05, max_value=1.0),
    render_share=st.floats(min_value=0.0, max_value=0.9),
    pages=st.integers(min_value=0, max_value=3000),
    pages_fast=st.integers(min_value=0, max_value=100),
)


def build_app(apis, on_worker_flags):
    operations = tuple(
        Operation(
            api=api, caller_function=f"call{i}", caller_file="Main.java",
            caller_line=10 + i, on_worker=worker and api.can_hang,
        )
        for i, (api, worker) in enumerate(zip(apis, on_worker_flags))
    )
    action = ActionSpec(
        name="act", handler="onClick",
        events=(InputEventSpec(name="e", operations=operations),),
    )
    return AppSpec(name="Gen", package="gen.app", category="Tools",
                   downloads=1, commit="x", actions=(action,))


app_strategy = st.tuples(
    st.lists(api_strategy, min_size=1, max_size=5),
    st.lists(st.booleans(), min_size=5, max_size=5),
).map(lambda pair: build_app(pair[0], pair[1]))


@given(app_strategy, st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_engine_invariants(app, seed):
    engine = ExecutionEngine(LG_V10, seed=seed)
    execution = engine.run_action(app, app.actions[0])

    # Events are processed in order without overlap.
    previous_finish = execution.start_ms
    for event in execution.events:
        assert event.dispatch_ms >= previous_finish
        assert event.finish_ms >= event.dispatch_ms
        previous_finish = event.finish_ms

    # Response time equals main-thread occupancy of the event.
    for event in execution.events:
        main_span = sum(
            oe.duration_ms for oe in event.op_executions
            if oe.thread == MAIN_THREAD
        )
        worker_dispatches = sum(
            1 for oe in event.op_executions if oe.thread != MAIN_THREAD
        )
        assert event.response_time_ms >= main_span - 1e-6
        assert event.response_time_ms <= main_span + worker_dispatches + 1.0

    # Action end lies beyond the last event (settle), timeline beyond
    # that (ambient).
    assert execution.end_ms > execution.events[-1].finish_ms
    assert execution.timeline.end_ms > execution.end_ms

    # All counters are non-negative on every thread.
    for thread in execution.timeline.threads():
        for segment in execution.timeline.segments(thread):
            for event_name, value in segment.counts.items():
                assert value >= 0.0, (thread, event_name)

    # Ground truth consistency: a bug-caused hang implies a hang.
    if execution.bug_caused_hang():
        assert execution.has_soft_hang
        assert execution.hang_bug_sites()

    # Worker-offloaded operations never block the main thread.
    for event in execution.events:
        for oe in event.op_executions:
            if oe.op.on_worker:
                assert oe.thread != MAIN_THREAD


@given(app_strategy, st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_engine_determinism(app, seed):
    first = ExecutionEngine(LG_V10, seed=seed).run_action(
        app, app.actions[0]
    )
    second = ExecutionEngine(LG_V10, seed=seed).run_action(
        app, app.actions[0]
    )
    assert first.response_time_ms == second.response_time_ms
    assert first.timeline.total(MAIN_THREAD, "task-clock") == (
        second.timeline.total(MAIN_THREAD, "task-clock")
    )


@given(app_strategy, st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_render_work_only_from_render_share(app, seed):
    engine = ExecutionEngine(LG_V10, seed=seed)
    execution = engine.run_action(app, app.actions[0])
    has_render_ops = any(
        op.api.render_share > 0 and not op.on_worker
        for op in app.actions[0].operations()
    )
    op_render_segments = [
        s for s in execution.timeline.segments(RENDER_THREAD)
        if s.op is not None
    ]
    assert bool(op_render_segments) == has_render_ops
