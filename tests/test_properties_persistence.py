"""Property-based round-trip tests for the persistence layer."""

from hypothesis import given, settings, strategies as st

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.persistence import (
    database_from_json,
    database_to_json,
    merge_reports,
    report_from_json,
    report_to_json,
)
from repro.core.report import HangBugReport

operation_names = st.sampled_from([
    "a.B.read", "c.D.parse", "e.F.decode", "g.H.toJson",
])

record_strategy = st.tuples(
    operation_names,
    st.floats(min_value=100.0, max_value=5000.0),   # response time
    st.floats(min_value=0.0, max_value=1.0),        # occurrence factor
    st.integers(min_value=0, max_value=5),          # device
)


def build_report(records, app="App"):
    report = HangBugReport(app)
    for operation, rt, occ, device in records:
        report.record(
            operation=operation, file=operation.split(".")[0] + ".java",
            line=10, is_self_developed=False, response_time_ms=rt,
            occurrence_factor=occ, device_id=device,
        )
    return report


@given(st.lists(record_strategy, max_size=20))
@settings(max_examples=50)
def test_report_roundtrip_preserves_everything(records):
    original = build_report(records)
    restored = report_from_json(report_to_json(original))
    assert len(restored) == len(original)
    assert restored.total_occurrences() == original.total_occurrences()
    for before, after in zip(original.entries(), restored.entries()):
        assert before.operation == after.operation
        assert before.occurrences == after.occurrences
        assert before.devices == after.devices
        assert before.total_hang_ms == after.total_hang_ms


@given(st.lists(record_strategy, min_size=1, max_size=10),
       st.lists(record_strategy, min_size=1, max_size=10))
@settings(max_examples=50)
def test_merge_is_occurrence_additive(first, second):
    merged = merge_reports([build_report(first), build_report(second)])
    assert merged.total_occurrences() == len(first) + len(second)


@given(st.lists(record_strategy, min_size=1, max_size=10))
@settings(max_examples=30)
def test_merge_with_empty_is_identity(records):
    report = build_report(records)
    merged = merge_reports([report, HangBugReport("App")])
    assert merged.total_occurrences() == report.total_occurrences()
    assert len(merged) == len(report)


@given(st.sets(st.sampled_from([
    "a.B.c", "d.E.f", "g.H.i", "j.K.l", "m.N.o",
])))
@settings(max_examples=40)
def test_database_roundtrip(names):
    db = BlockingApiDatabase(names)
    restored = database_from_json(database_to_json(db))
    assert restored.names() == names
