"""Tests for the one-button reproduction entry point."""

import pytest

from repro.harness.reproduce import EXPERIMENTS, generate_all


def test_experiment_registry_covers_every_artifact():
    names = [name for name, _ in EXPERIMENTS]
    assert names == [
        "figure1", "table2", "table3", "table4", "figure4", "figure5",
        "figure6", "figure7", "table5", "table6", "figure8",
    ]


def test_generate_all_writes_files(device, tmp_path):
    # A cheap subset: monkeypatch-free by slicing the registry through
    # generate_all is heavy; run only the fast experiments directly.
    fast = [(name, runner) for name, runner in EXPERIMENTS
            if name in ("figure1", "figure6", "figure7")]
    import repro.harness.reproduce as module

    original = module.EXPERIMENTS
    module.EXPERIMENTS = tuple(fast)
    try:
        seen = []
        rendered = generate_all(
            device, tmp_path, seed=0,
            progress=lambda name, seconds: seen.append(name),
        )
    finally:
        module.EXPERIMENTS = original
    assert set(rendered) == {"figure1", "figure6", "figure7"}
    assert seen == ["figure1", "figure6", "figure7"]
    for name in rendered:
        path = tmp_path / f"{name}.txt"
        assert path.exists()
        assert path.read_text().strip() == rendered[name].strip()


def test_rendered_artifacts_mention_their_subject(device, tmp_path):
    import repro.harness.reproduce as module

    fast = [(n, r) for n, r in EXPERIMENTS if n == "figure6"]
    original = module.EXPERIMENTS
    module.EXPERIMENTS = tuple(fast)
    try:
        rendered = generate_all(device, tmp_path)
    finally:
        module.EXPERIMENTS = original
    assert "HtmlCleaner.clean" in rendered["figure6"]
