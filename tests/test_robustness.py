"""Failure-injection and misuse robustness tests.

Production components must fail loudly on caller mistakes and degrade
gracefully on odd-but-legal inputs.
"""

import pytest

from repro.apps.catalog import get_app
from repro.core.config import HangDoctorConfig
from repro.core.diagnoser import Diagnoser
from repro.core.hang_doctor import HangDoctor
from repro.core.trace_analyzer import TraceAnalyzer
from repro.detectors.timeout import TimeoutDetector
from repro.sim.engine import ExecutionEngine
from repro.sim.timeline import MAIN_THREAD, Segment, Timeline


def test_hang_doctor_rejects_foreign_app_execution(device, k9, andstatus):
    """Feeding another app's execution is a wiring bug: fail loudly."""
    doctor = HangDoctor(k9, device)
    engine = ExecutionEngine(device, seed=1)
    foreign = engine.run_action(andstatus, andstatus.action("compose"))
    # AndStatus also has a "compose" action: without an app identity
    # check this would silently corrupt K9's state machine.
    with pytest.raises(ValueError):
        doctor.process(foreign)


def test_invalid_config_rejected_at_construction(device, k9):
    with pytest.raises(ValueError):
        HangDoctor(k9, device, config=HangDoctorConfig(trace_period_ms=0))


def test_diagnoser_survives_sub_period_hangs(device):
    """A hang barely over 100 ms may yield very few trace samples; the
    diagnosis must still complete (possibly rootless)."""
    from repro.apps import android_apis as apis
    from repro.apps.app import AppSpec
    from repro.apps.catalog_helpers import action, op
    from dataclasses import replace

    short_bug = replace(apis.FILE_READ, mean_ms=110.0, sigma=0.05)
    app = AppSpec(
        name="Tight", package="t.app", category="Tools", downloads=1,
        commit="x",
        actions=(action("tap", "onClick", op(short_bug, "readTiny")),),
    )
    diagnoser = Diagnoser(HangDoctorConfig(), app_package="t.app")
    engine = ExecutionEngine(device, seed=1)
    for _ in range(20):
        execution = engine.run_action(app, app.action("tap"))
        if not execution.has_soft_hang:
            continue
        result = diagnoser.diagnose(execution)
        assert result.diagnosed
        for hang in result.hang_diagnoses:
            assert hang.diagnosis.trace_count >= 1


def test_analyzer_handles_single_trace():
    from repro.base.frames import Frame, StackTrace

    frame = Frame("a.B", "m", "B.java", 1)
    diagnosis = TraceAnalyzer().analyze(
        [StackTrace(time_ms=0.0, frames=(frame,))]
    )
    assert diagnosis.root == frame
    assert diagnosis.occurrence == 1.0


def test_timeout_detector_idempotent_on_same_execution(engine, k9):
    """Replaying the same execution twice must yield identical
    detections (the detector holds no hidden coupling to time)."""
    detector = TimeoutDetector(k9, timeout_ms=100.0)
    execution = engine.run_action(k9, k9.action("folders"))
    first = detector.process(execution)
    second = detector.process(execution)
    assert [d.root_name for d in first.detections] == [
        d.root_name for d in second.detections
    ]


def test_timeline_rejects_rewind_per_thread():
    timeline = Timeline()
    timeline.add(Segment(thread=MAIN_THREAD, start_ms=100, end_ms=200))
    with pytest.raises(ValueError):
        timeline.add(Segment(thread=MAIN_THREAD, start_ms=50, end_ms=60))


def test_hang_doctor_handles_back_to_back_hangs(device):
    """An app whose every action always hangs must not wedge the state
    machine (every path stays legal)."""
    from repro.apps import android_apis as apis
    from repro.apps.app import AppSpec
    from repro.apps.catalog_helpers import action, op

    app = AppSpec(
        name="AlwaysHang", package="a.app", category="Tools", downloads=1,
        commit="x",
        actions=(
            action("slow", "onClick",
                   op(apis.BITMAP_DECODE_FILE, "decodeBig")),
        ),
    )
    doctor = HangDoctor(app, device)
    engine = ExecutionEngine(device, seed=2)
    for _ in range(30):
        doctor.process(engine.run_action(app, app.action("slow")))
    assert doctor.state_of("slow").value in ("hang_bug", "suspicious")


def test_report_render_with_long_names():
    from repro.core.report import HangBugReport

    report = HangBugReport("X")
    report.record(
        operation="a" * 80, file="F.java", line=1,
        is_self_developed=False, response_time_ms=200.0,
        occurrence_factor=0.5,
    )
    text = report.render()
    assert "a" * 80 in text


def test_detection_root_name_none():
    from repro.detectors.base import Detection

    detection = Detection(
        detector="T", app_name="A", action_name="a", time_ms=0.0,
        response_time_ms=0.0, root=None,
    )
    assert detection.root_name is None
