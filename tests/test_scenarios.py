"""Generator properties and sweep determinism of repro.scenarios."""

import pytest

from repro.apps import android_apis as apis
from repro.apps.corpus import generate_clean_app
from repro.apps.sessions import SessionGenerator
from repro.base.kinds import ApiKind
from repro.core.hang_doctor import HangDoctor
from repro.detectors.runner import run_detector
from repro.harness.exp_fleet import fleet_app_seed
from repro.harness.exp_scenarios import ScenarioResult, scenario_sweep
from repro.scenarios import (
    ARCHETYPES,
    DEFAULT_MIX,
    TAXONOMY,
    assign_archetypes,
    generate_fleet,
    parse_mix,
    render_mix,
    scenario_app,
)
from repro.sim.device import LG_V10
from repro.sim.engine import ExecutionEngine

BUG_ARCHETYPES = tuple(a.name for a in TAXONOMY if a.has_bugs)
BENIGN_ARCHETYPES = tuple(a.name for a in TAXONOMY if not a.has_bugs)


# ---------------------------------------------------------------------------
# Taxonomy and mix arithmetic
# ---------------------------------------------------------------------------


def test_taxonomy_covers_required_archetypes():
    names = {archetype.name for archetype in TAXONOMY}
    assert names == {
        "clean", "main_thread_blocking", "async_task_hang",
        "ipc_wait_hang", "lifecycle_callback_race", "render_jank_benign",
    }


def test_parse_mix_accepts_aliases_and_normalizes():
    mix = parse_mix("clean=2,async=1,render=1")
    assert mix == (
        ("clean", 0.5),
        ("async_task_hang", 0.25),
        ("render_jank_benign", 0.25),
    )


def test_parse_mix_orders_by_taxonomy_not_spelling():
    assert parse_mix("render=1,clean=1") == parse_mix("clean=1,render=1")


def test_parse_mix_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown archetype"):
        parse_mix("clean=0.5,bogus=0.5")
    with pytest.raises(ValueError, match="positive fraction"):
        parse_mix("clean=0")
    with pytest.raises(ValueError, match="twice"):
        parse_mix("clean=0.5,clean=0.5")
    with pytest.raises(ValueError, match="not name=fraction"):
        parse_mix("clean")
    with pytest.raises(ValueError, match="empty"):
        parse_mix("")


def test_parse_mix_accepts_mapping_and_roundtrips():
    mix = parse_mix({"clean": 0.5, "blocking": 0.5})
    assert parse_mix(mix) == mix
    assert render_mix(mix) == "clean=0.5,blocking=0.5"


def test_assignment_counts_match_largest_remainder():
    mix = parse_mix(DEFAULT_MIX)
    assignment = assign_archetypes(mix, 1000)
    counts = {}
    for name, _ in assignment:
        counts[name] = counts.get(name, 0) + 1
    for name, fraction in mix:
        assert abs(counts[name] - fraction * 1000) < 1.0, name


def test_assignment_prefix_stays_on_mix():
    """Any prefix of the fleet is itself approximately on-mix."""
    assignment = assign_archetypes("clean=0.5,blocking=0.5", 100)
    for cut in (10, 25, 50):
        clean = sum(
            1 for name, _ in assignment[:cut] if name == "clean"
        )
        assert abs(clean - cut / 2) <= 1


def test_assignment_ordinals_count_per_archetype():
    assignment = assign_archetypes(DEFAULT_MIX, 200)
    seen = {}
    for name, ordinal in assignment:
        assert ordinal == seen.get(name, 0)
        seen[name] = ordinal + 1


# ---------------------------------------------------------------------------
# Generator determinism and stream disjointness
# ---------------------------------------------------------------------------


def test_same_seed_gives_identical_fleet():
    first = generate_fleet(120, seed=5)
    second = generate_fleet(120, seed=5)
    assert first == second  # frozen dataclasses: deep equality


def test_different_seeds_give_different_fleets():
    assert generate_fleet(30, seed=0) != generate_fleet(30, seed=1)


def test_slices_recompose_the_full_fleet():
    full = generate_fleet(60, seed=3)
    sliced = (
        generate_fleet(60, seed=3, indices=range(0, 20))
        + generate_fleet(60, seed=3, indices=range(20, 60))
    )
    assert sliced == full


def test_archetype_streams_survive_mix_changes():
    """App k of an archetype is invariant under mix and size changes."""
    narrow = generate_fleet(40, mix="async=1", seed=7)
    mixed = generate_fleet(400, mix=DEFAULT_MIX, seed=7)
    by_ordinal = {}
    for entry in mixed:
        if entry.archetype == "async_task_hang":
            by_ordinal[len(by_ordinal)] = entry.app
    for ordinal, entry in enumerate(narrow):
        assert entry.app == by_ordinal[ordinal]


def test_archetype_streams_are_disjoint():
    """No two archetypes share an RNG stream: same seed and ordinal
    yield different draw sequences, not the same app re-labelled."""
    for ordinal in range(10):
        profiles = set()
        for name in ARCHETYPES:
            app = scenario_app(name, ordinal, seed=0)
            profiles.add((app.category, app.downloads, app.commit))
        # Six archetypes drawing the same profile sequence would
        # collapse to one profile; independent streams essentially
        # never fully collide.
        assert len(profiles) > 1


def test_clean_archetype_is_the_legacy_generator():
    """One generator path: the clean archetype and the legacy corpus
    draw identical app bodies from identical streams."""
    from repro.base.rng import stream
    from repro.scenarios.archetypes import build_clean

    legacy = generate_clean_app(7, seed=0)
    rebuilt = build_clean(
        stream(0, "corpus", 7), legacy.name, legacy.package
    )
    assert rebuilt == legacy


def test_legacy_clean_app_bytes_pinned():
    """Seed-for-seed identical output for the legacy call — pinned to
    the values the corpus has always produced."""
    app = generate_clean_app(0, seed=0)
    assert (app.name, app.package, app.category, app.downloads,
            app.commit, len(app.actions)) == (
        "GenApp-000", "com.generated.app000", "Video Players",
        257141, "6c44a0e", 5,
    )
    ops = [op.api.qualified_name for op in app.actions[0].operations()]
    assert ops == [
        "android.view.OrientationEventListener.enable",
        "android.util.Log.d",
        "android.content.Intent.putExtra",
    ]


# ---------------------------------------------------------------------------
# AppSpec invariants and ground-truth labels
# ---------------------------------------------------------------------------


def test_every_generated_app_validates_appspec_invariants():
    fleet = generate_fleet(90, seed=11)
    names = set()
    for entry in fleet:
        app = entry.app
        assert app.name not in names  # fleet-wide unique names
        names.add(app.name)
        assert app.actions  # AppSpec validated on construction
        for action in app.actions:
            assert action.events
            for event in action.events:
                assert event.operations


def test_ground_truth_matches_archetype_label():
    for entry in generate_fleet(90, seed=2):
        bugs = entry.app.hang_bug_operations()
        if ARCHETYPES[entry.archetype].has_bugs:
            assert bugs, entry.app.name
        else:
            assert not bugs, entry.app.name


def test_async_archetype_bug_is_the_wait_not_the_worker():
    app = scenario_app("async_task_hang", 0, seed=0)
    for bug in app.hang_bug_operations():
        assert bug.api.kind is ApiKind.ASYNC_WAIT
        assert not bug.on_worker


def test_ipc_archetype_bugs_are_ipc_kind():
    app = scenario_app("ipc_wait_hang", 0, seed=0)
    assert app.hang_bug_operations()
    for bug in app.hang_bug_operations():
        assert bug.api.kind is ApiKind.IPC


def test_race_archetype_manifests_rarely_but_counts_as_truth():
    app = scenario_app("lifecycle_callback_race", 0, seed=0)
    bugs = app.hang_bug_operations()
    assert len(bugs) == 1
    assert 0.15 <= bugs[0].api.manifest_prob <= 0.45


def test_new_api_kinds_can_hang():
    for api in apis.ASYNC_WAIT_APIS + apis.IPC_APIS:
        assert api.can_hang, api.qualified_name


# ---------------------------------------------------------------------------
# Detector behaviour per archetype
# ---------------------------------------------------------------------------


def _deploy(app, seed=0, users=2, actions_per_user=12):
    app_seed = fleet_app_seed(seed, app.name)
    engine = ExecutionEngine(LG_V10, seed=app_seed)
    doctor = HangDoctor(app, LG_V10, seed=app_seed)
    detections = []
    hangs = 0
    for session in SessionGenerator(seed=seed).fleet_sessions(
            app, users, actions_per_user):
        executions = engine.run_session(
            app, session.action_names, gap_ms=1000.0
        )
        run = run_detector(doctor, executions, device_id=session.user_id)
        detections.extend(run.detections)
        hangs += sum(1 for e in executions if e.has_soft_hang)
    return doctor, detections, hangs


def test_render_jank_apps_hang_but_never_verdict_hang_bug():
    """The true-negative archetype: visible lag, zero HANG_BUG."""
    from repro.core.states import ActionState

    for ordinal in range(4):
        app = scenario_app("render_jank_benign", ordinal, seed=0)
        doctor, detections, hangs = _deploy(app)
        assert hangs > 0, f"{app.name}: no perceivable lag generated"
        assert not detections, f"{app.name}: detector flagged benign jank"
        for action in app.actions:
            assert doctor.state_of(action.name) is not ActionState.HANG_BUG


def test_async_and_ipc_bugs_are_detectable():
    detected = 0
    for name in ("async_task_hang", "ipc_wait_hang"):
        for ordinal in range(3):
            app = scenario_app(name, ordinal, seed=0)
            _, detections, _ = _deploy(app)
            detected += len(detections)
    assert detected > 0, "no async/IPC bug ever diagnosed"


# ---------------------------------------------------------------------------
# Sweep determinism
# ---------------------------------------------------------------------------

_SWEEP = dict(seed=0, size=18, users=1, actions_per_user=8)


def test_sweep_byte_identical_across_workers():
    serial = scenario_sweep(LG_V10, workers=1, **_SWEEP)
    for workers in (2, 4):
        sharded = scenario_sweep(LG_V10, workers=workers, **_SWEEP)
        assert sharded.render() == serial.render()
        assert sharded.cells == serial.cells


def test_sweep_resumes_byte_identically(tmp_path):
    checkpoint = tmp_path / "ckpt"
    baseline = scenario_sweep(LG_V10, workers=2, **_SWEEP)
    first = scenario_sweep(
        LG_V10, workers=2, checkpoint=str(checkpoint), **_SWEEP
    )
    resumed = scenario_sweep(
        LG_V10, workers=2, checkpoint=str(checkpoint), resume=True,
        **_SWEEP
    )
    assert first.render() == baseline.render()
    assert resumed.render() == baseline.render()
    assert resumed.execution.checkpoint_hits > 0


def test_sweep_resume_requires_checkpoint():
    with pytest.raises(ValueError, match="checkpoint"):
        scenario_sweep(LG_V10, resume=True, **_SWEEP)


def test_sweep_rejects_empty_fleet():
    with pytest.raises(ValueError, match="positive"):
        scenario_sweep(LG_V10, size=0)


def test_sweep_result_merge_restores_order():
    result = scenario_sweep(LG_V10, workers=3, **_SWEEP)
    assert [cell.index for cell in result.cells] == list(
        range(_SWEEP["size"])
    )


def test_sweep_render_has_archetype_rows():
    result = scenario_sweep(LG_V10, workers=1, **_SWEEP)
    rendered = result.render()
    for archetype in result.archetypes():
        assert archetype in rendered
    assert "TOTAL" in rendered


def test_sweep_row_unknown_archetype_raises():
    result = ScenarioResult(
        cells=[], size=0, mix=parse_mix(DEFAULT_MIX), users=1,
        actions_per_user=1,
    )
    with pytest.raises(KeyError):
        result.row("clean")
