"""The elastic shard scheduler and continuous fleet mode.

The headline guarantees under test: weight packing is a deterministic
partition, the scheduler's output equals a plain serial map under any
injected kill/stall storm (failure schedules change timing, never
bytes), every steal/reshard decision is journaled before it is acted
on, and ``stream_sweep`` renders byte-identically across worker
counts, executor storms, checkpoint resume — and reproduces the crowd
sweep's aggregate bit-for-bit when churn and faults are off.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.checkpoint import ShardJournal, run_key
from repro.faults import FaultInjector, FaultPlan
from repro.harness.exp_crowd import crowd_sweep
from repro.harness.exp_stream import (
    StreamResult,
    stream_deadline,
    stream_sweep,
)
from repro.parallel import ExecutionReport
from repro.sched import (
    ARCHETYPE_WEIGHTS,
    CostModel,
    ElasticScheduler,
    pack_by_weight,
)

# ------------------------------------------------------------- packing


def test_pack_by_weight_partitions_ascending():
    for count in (0, 1, 5, 7, 40):
        for bins in (1, 2, 4, 13):
            weights = [1.0 + (i % 5) for i in range(count)]
            groups = pack_by_weight(weights, bins)
            flat = sorted(i for group in groups for i in group)
            assert flat == list(range(count))
            for group in groups:
                assert list(group) == sorted(group)
            if count:
                assert len(groups) <= min(bins, count)
            else:
                assert groups == []


def test_pack_by_weight_is_deterministic():
    weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    assert pack_by_weight(weights, 3) == pack_by_weight(weights, 3)


def test_pack_by_weight_balances_heavy_items():
    # One heavy item gets a bin of its own; light items share.
    assert pack_by_weight([3.0, 1.0, 1.0, 1.0], 2) == [(0,), (1, 2, 3)]
    # Uniform weights degrade to near-equal counts.
    groups = pack_by_weight([1.0] * 10, 3)
    sizes = sorted(len(g) for g in groups)
    assert max(sizes) - min(sizes) <= 1


def test_pack_by_weight_load_spread_beats_contiguous_split():
    """The point of weighted packing: with skewed weights, the max
    bin load stays close to the ideal (total / bins), which a
    contiguous count-based split cannot promise."""
    weights = [5.0 if i % 7 == 0 else 1.0 for i in range(35)]
    groups = pack_by_weight(weights, 5)
    loads = [sum(weights[i] for i in group) for group in groups]
    ideal = sum(weights) / 5
    assert max(loads) <= ideal + max(weights)


def test_pack_by_weight_rejects_bad_bins():
    with pytest.raises(ValueError, match="bins"):
        pack_by_weight([1.0], 0)
    assert pack_by_weight([], 0) == []


# ---------------------------------------------------------- cost model


def test_cost_model_archetype_weights():
    model = CostModel()
    assert model.archetype_weight("clean") == 1.0
    assert model.archetype_weight("main_thread_blocking") \
        == ARCHETYPE_WEIGHTS["main_thread_blocking"]
    assert model.archetype_weight("never_heard_of_it") == 1.0


def test_cost_model_unanchored_estimates_none():
    model = CostModel()
    assert model.ms_per_action is None
    assert model.estimate_seconds(4.0) is None
    assert "unanchored" in model.describe()


def test_cost_model_from_trajectory_reads_committed_baseline():
    """The committed BENCH_engine.json anchors the model; the weights
    only ever steer scheduling, so this is a smoke that calibration
    plumbing reads the real file."""
    model = CostModel.from_trajectory()
    if model.ms_per_action is not None:
        assert model.ms_per_action > 0.0
        assert model.estimate_seconds(1.0, actions=1000) > 0.0


def test_cost_model_from_trajectory_degrades_on_garbage(tmp_path):
    assert CostModel.from_trajectory(tmp_path).ms_per_action is None
    (tmp_path / "BENCH_engine.json").write_text("not json")
    assert CostModel.from_trajectory(tmp_path).ms_per_action is None
    (tmp_path / "BENCH_engine.json").write_text(json.dumps(
        {"entries": {"full_mode.columnar_ms_per_action": {"value": 0.5}}}
    ))
    assert CostModel.from_trajectory(tmp_path).ms_per_action == 0.5


def test_stream_deadline_sized_from_anchor():
    anchored = CostModel(ms_per_action=1.0)
    deadline = stream_deadline(anchored, app_count=2, actions=40)
    assert deadline is not None and deadline >= 5.0
    assert stream_deadline(CostModel(), 2, 40) is None


# ----------------------------------------------------------- scheduler


def _cube(x):
    return x ** 3


def _die_on_17(x):
    if x == 17 and multiprocessing.parent_process() is not None:
        os._exit(87)
    return x ** 3


def _stall_on_2(x):
    if x == 2 and multiprocessing.parent_process() is not None:
        time.sleep(60.0)
    return x ** 3


def test_scheduler_map_matches_serial():
    items = list(range(15))
    expected = [_cube(x) for x in items]
    keys = [f"k{i}" for i in items]
    for workers in (1, 2, 4):
        sched = ElasticScheduler(workers=workers)
        assert sched.map(_cube, items, keys) == expected


def test_scheduler_map_validates_inputs():
    sched = ElasticScheduler(workers=1)
    with pytest.raises(ValueError, match="one key per item"):
        sched.map(_cube, [1, 2], ["only"])
    with pytest.raises(ValueError, match="unique"):
        sched.map(_cube, [1, 2], ["same", "same"])
    with pytest.raises(ValueError, match="one weight per item"):
        sched.map(_cube, [1, 2], ["a", "b"], weights=[1.0])


def test_scheduler_output_survives_kill_storm():
    """Injected worker kills reshard work across dispatch rounds; the
    result equals a serial map and the reshards are accounted."""
    items = list(range(24))
    expected = [_cube(x) for x in items]
    plan = FaultPlan(worker_kill_rate=0.5)
    report = ExecutionReport()
    sched = ElasticScheduler(
        workers=3, report=report,
        faults=FaultInjector(plan, seed=5, scope=("storm",)),
    )
    assert sched.map(_cube, items, [f"k{i}" for i in items]) == expected
    assert report.reshards >= 1
    assert sched.dispatch_rounds >= 2


def test_scheduler_steals_from_real_straggler():
    """A genuinely stalled worker blows the seeded deadline; its items
    are stolen (reclaimed and repacked), and because the stall verdict
    is worker-only, the re-dispatch completes them."""
    items = list(range(6))
    expected = [_cube(x) for x in items]
    report = ExecutionReport()
    sched = ElasticScheduler(workers=3, report=report, deadline=1.0)
    result = sched.map(_stall_on_2, items, [f"k{i}" for i in items])
    # _stall_on_2 only stalls in a worker process; the steal repacks
    # item 2 into a later dispatch where it may stall again, and after
    # MAX_IDLE_ROUNDS the fallback completes it in-process.
    assert result == expected
    assert report.steals >= 1
    assert report.deadline_hits >= 1


def test_scheduler_journals_decisions_before_acting(tmp_path):
    """The write-ahead contract: the reassignment log carries every
    assignment and reshard, assignments strictly before the
    steal/reshard they produced."""
    report = ExecutionReport()
    journal = ShardJournal(tmp_path, run_key("sched-test")).open()
    plan = FaultPlan(worker_kill_rate=0.5)
    sched = ElasticScheduler(
        workers=3, report=report, journal=journal,
        faults=FaultInjector(plan, seed=5, scope=("storm",)),
    )
    items = list(range(24))
    assert sched.map(_cube, items, [f"k{i}" for i in items]) \
        == [_cube(x) for x in items]
    records = journal.reassignments()
    kinds = [record["kind"] for record in records]
    assert kinds[0] == "assign"
    assert "reshard" in kinds
    # Every resharded item was named in a prior assignment.
    assigned = set()
    for record in records:
        if record["kind"] == "assign":
            for shard in record["shards"]:
                assigned.update(shard)
        elif record["kind"] in ("steal", "reshard"):
            assert set(record["items"]) <= assigned


def test_scheduler_resumes_from_journal(tmp_path):
    report = ExecutionReport()
    journal = ShardJournal(tmp_path, run_key("sched-resume")).open()
    items = list(range(8))
    keys = [f"k{i}" for i in items]
    expected = [_cube(x) for x in items]
    first = ElasticScheduler(workers=2, journal=journal, report=report)
    assert first.map(_cube, items, keys) == expected
    resumed = ShardJournal(tmp_path, run_key("sched-resume"),
                           report=report).open(resume=True)
    second = ElasticScheduler(workers=2, journal=resumed, report=report)
    assert second.map(_cube, items, keys) == expected
    assert report.checkpoint_hits >= len(items)


def test_scheduler_worker_crash_recovery_without_injection():
    """A real (non-injected) worker death reshards instead of
    serializing: output is unchanged and the report says what
    happened."""
    items = list(range(24))
    expected = [_cube(x) for x in items]
    report = ExecutionReport()
    sched = ElasticScheduler(workers=3, report=report)
    assert sched.map(_die_on_17, items, [f"k{i}" for i in items]) \
        == expected
    assert report.worker_crashes >= 1
    assert report.reshards >= 1


# ----------------------------------------------------------- streaming


QUICK = dict(rounds=3, fleet_size=2, apps=("K9-mail",),
             actions_per_round=8)


@pytest.fixture(scope="module")
def stream_serial(device):
    return stream_sweep(device, seed=5, churn_rate=0.25, workers=1,
                        **QUICK)


@pytest.mark.parametrize("workers", [2, 4])
def test_stream_parallel_equals_serial(device, stream_serial, workers):
    parallel = stream_sweep(device, seed=5, churn_rate=0.25,
                            workers=workers, **QUICK)
    assert parallel.render() == stream_serial.render()


def test_stream_output_identical_under_executor_storm(device,
                                                      stream_serial):
    """The acceptance criterion: any seeded kill/stall schedule leaves
    rendered output byte-identical to the zero-fault run."""
    stormed = stream_sweep(device, seed=5, churn_rate=0.25, workers=2,
                           worker_kill_rate=0.4, shard_stall_rate=0.4,
                           **QUICK)
    assert stormed.render() == stream_serial.render()
    assert stormed.execution.reshards + stormed.execution.steals >= 1


def test_stream_churn_schedule_is_seeded_data(device):
    """Churn draws from the keyed fleet channel: the membership
    schedule repeats per seed, differs across seeds, and lands in the
    rendered series."""
    once = stream_sweep(device, seed=9, churn_rate=0.5, workers=1,
                        **QUICK)
    again = stream_sweep(device, seed=9, churn_rate=0.5, workers=1,
                         **QUICK)
    other = stream_sweep(device, seed=10, churn_rate=0.5, workers=1,
                         **QUICK)
    assert once.render() == again.render()
    schedules = [(r.fleet, r.joined, r.left) for r in once.rounds]
    assert schedules != [(r.fleet, r.joined, r.left)
                         for r in other.rounds]
    assert any(r.joined or r.left for r in once.rounds)
    assert once.execution.churn_events \
        == sum(len(r.joined) + len(r.left) for r in once.rounds)


def test_stream_fleet_never_empties(device):
    result = stream_sweep(device, seed=2, churn_rate=0.95, workers=1,
                          **QUICK)
    assert all(len(r.fleet) >= 1 for r in result.rounds)


def test_stream_publish_cadence(device):
    """publish_every > 1 holds the snapshot between refreshes: the
    known-bug count a non-publish round runs with equals the previous
    round's."""
    result = stream_sweep(device, seed=5, publish_every=2, workers=1,
                          rounds=4, fleet_size=2, apps=("K9-mail",),
                          actions_per_round=8)
    for entry in result.rounds:
        assert entry.published == (entry.round_index % 2 == 0)
    for prev, this in zip(result.rounds, result.rounds[1:]):
        if not this.published:
            assert this.known_bugs == prev.known_bugs
            assert this.blocking_apis == prev.blocking_apis


def test_stream_reproduces_crowd_cell_bit_for_bit(device):
    """Acceptance criterion: with churn and executor faults zero and a
    static fleet, the stream's aggregate equals the crowd sweep's cell
    for the same fleet size, field for field."""
    stream = stream_sweep(device, seed=3, rounds=2, fleet_size=2,
                          apps=("K9-mail",), actions_per_round=8,
                          workers=2)
    crowd = crowd_sweep(device, seed=3, fleet_sizes=(2,), rounds=2,
                        apps=("K9-mail",), actions_per_round=8,
                        workers=1)
    cell = crowd.cell(2)
    assert stream.final_summary() == {
        "phase2_collections": cell.phase2_collections,
        "kb_short_circuits": cell.kb_short_circuits,
        "bugs_detected": cell.bugs_detected,
        "known_bugs": cell.known_bugs,
        "new_blocking_apis": cell.new_blocking_apis,
        "batches_ingested": cell.batches_ingested,
        "batches_dropped": cell.batches_dropped,
        "batches_duplicated": cell.batches_duplicated,
        "batches_late": cell.batches_late,
        "duplicates_ignored": cell.duplicates_ignored,
    }


def test_stream_resume_is_byte_identical(device, tmp_path):
    """A checkpointed stream resumes from its journal and renders the
    same bytes; the resumed run restores at least one shard instead of
    recomputing everything."""
    kwargs = dict(seed=5, churn_rate=0.25, workers=2, **QUICK)
    clean = stream_sweep(device, **kwargs)
    first = stream_sweep(device, checkpoint=str(tmp_path), **kwargs)
    assert first.render() == clean.render()
    resumed = stream_sweep(device, checkpoint=str(tmp_path),
                           resume=True, **kwargs)
    assert resumed.render() == clean.render()
    assert resumed.execution.checkpoint_hits >= 1


def test_stream_run_key_excludes_executor_knobs(device, tmp_path):
    """Failure-schedule independence of resume: a journal written
    under one storm serves a resume under a different storm (or none),
    because executor knobs shape timing, never output."""
    kwargs = dict(seed=5, churn_rate=0.25, workers=2, **QUICK)
    stormed = stream_sweep(device, checkpoint=str(tmp_path),
                           worker_kill_rate=0.4, **kwargs)
    calm = stream_sweep(device, checkpoint=str(tmp_path), resume=True,
                        **kwargs)
    assert calm.render() == stormed.render()
    assert calm.execution.checkpoint_hits >= 1


def test_stream_validates_parameters(device):
    with pytest.raises(ValueError, match="fleet_size"):
        stream_sweep(device, fleet_size=0)
    with pytest.raises(ValueError, match="rounds"):
        stream_sweep(device, rounds=0)
    with pytest.raises(ValueError, match="publish_every"):
        stream_sweep(device, publish_every=0)
    with pytest.raises(ValueError, match="churn_rate"):
        stream_sweep(device, churn_rate=1.5)
    with pytest.raises(ValueError, match="worker_kill_rate"):
        stream_sweep(device, worker_kill_rate=-0.1)
    with pytest.raises(ValueError, match="resume requires"):
        stream_sweep(device, resume=True)


def test_stream_result_render_mentions_series_and_aggregate(device,
                                                            stream_serial):
    text = stream_serial.render()
    assert "Stream - " in text
    assert "aggregate:" in text
    assert isinstance(stream_serial, StreamResult)
    assert stream_serial.device_rounds \
        == sum(len(r.fleet) for r in stream_serial.rounds)
