"""Tests for repro.serve — the live crowd ingestion service.

The contract under test, end to end: the service never acknowledges a
batch it can later lose, sheds overload with 429 + Retry-After instead
of degrading, and — at network fault rate 0 or otherwise — publishes a
final snapshot byte-identical to the synchronous batch path over the
same fleet, regardless of upload order, duplication, concurrency, or a
mid-run kill + restart.
"""

import asyncio
import json
import random

import pytest

from repro.crowd import CrowdAggregator
from repro.crowd.store import batch_to_dict
from repro.faults import FaultInjector, FaultPlan, TornWriteError
from repro.serve import (
    BatchJournal,
    DeliveryError,
    IngestService,
    ServeClient,
    ServiceState,
)
from repro.serve.loadgen import (
    baseline_snapshot_json,
    percentile,
    run_bench,
    synthetic_fleet_batches,
)
from repro.serve.service import _Request


def fleet(devices=6, rounds=2, seed=11):
    return synthetic_fleet_batches(seed, devices, rounds)


def flat(fleet_batches):
    return [b for _, batches in fleet_batches for b in batches]


def serial_json(batches):
    aggregator = CrowdAggregator()
    for batch in batches:
        aggregator.ingest(batch)
    from repro.crowd.store import aggregator_to_json

    return aggregator_to_json(aggregator)


# ------------------------------------------------------------- journal


def test_wal_round_trips_batches(tmp_path):
    batches = flat(fleet(3, 1))
    journal = BatchJournal(tmp_path / "wal.jsonl").open()
    for batch in batches:
        journal.append(batch)
    journal.sync()
    journal.close()
    replayed, torn = BatchJournal(tmp_path / "wal.jsonl").replay()
    assert not torn
    assert [b.batch_id for b in replayed] == [b.batch_id for b in batches]
    assert [batch_to_dict(b) for b in replayed] == \
        [batch_to_dict(b) for b in batches]


def test_wal_replay_cuts_torn_tail(tmp_path):
    batches = flat(fleet(3, 1))
    path = tmp_path / "wal.jsonl"
    journal = BatchJournal(path).open()
    for batch in batches:
        journal.append(batch)
    journal.sync()
    journal.close()
    # A crash mid-append: the last record is half-written.
    whole = path.read_bytes()
    torn_record = whole.rstrip(b"\n").rsplit(b"\n", 1)[-1]
    path.write_bytes(whole + torn_record[: len(torn_record) // 2])
    replayed, torn = BatchJournal(path).replay()
    assert torn
    assert [b.batch_id for b in replayed] == [b.batch_id for b in batches]


def test_wal_torn_append_then_repair_keeps_prefix(tmp_path):
    batches = flat(fleet(2, 1))
    path = tmp_path / "wal.jsonl"
    journal = BatchJournal(path).open()
    journal.append(batches[0])
    journal.sync()
    injector = FaultInjector(FaultPlan(torn_write_rate=1.0), seed=0)
    with pytest.raises(TornWriteError):
        journal.append(batches[1], faults=injector)
    journal.repair()
    journal.close()
    replayed, torn = BatchJournal(path).replay()
    assert not torn  # repair removed the torn half-record
    assert [b.batch_id for b in replayed] == [batches[0].batch_id]


def test_wal_reset_empties_after_snapshot(tmp_path):
    journal = BatchJournal(tmp_path / "wal.jsonl").open()
    for batch in flat(fleet(2, 1)):
        journal.append(batch)
    journal.sync()
    journal.reset()
    journal.close()
    assert BatchJournal(tmp_path / "wal.jsonl").replay() == ([], False)


# ------------------------------------------------------- service state


def test_state_recovers_snapshot_plus_journal(tmp_path):
    batches = flat(fleet(4, 2))
    state = ServiceState(tmp_path).recover()
    state.log(batches[:6])
    for batch in batches[:6]:
        state.ingest(batch)
    state.publish()
    state.log(batches[6:])
    for batch in batches[6:]:
        state.ingest(batch)
    state.close()  # no final publish: the tail lives only in the WAL

    recovered = ServiceState(tmp_path).recover()
    assert recovered.replayed == len(batches) - 6
    assert serial_json(recovered.aggregator.batches()) == \
        serial_json(batches)
    recovered.close()


def test_state_crash_between_snapshot_and_reset_is_idempotent(tmp_path):
    """Batches both in the snapshot and still in the WAL count once."""
    from repro.crowd.store import save_aggregator

    batches = flat(fleet(3, 1))
    state = ServiceState(tmp_path).recover()
    state.log(batches)
    for batch in batches:
        state.ingest(batch)
    # Crash after the snapshot rename but before the WAL reset:
    save_aggregator(state.snapshot_path, state.aggregator)
    state.close()

    recovered = ServiceState(tmp_path).recover()
    assert recovered.replayed == len(batches)  # replayed, then deduped
    assert serial_json(recovered.aggregator.batches()) == \
        serial_json(batches)
    recovered.close()


def test_state_torn_snapshot_write_loses_nothing(tmp_path):
    """A torn publish keeps the old snapshot AND the full journal."""
    batches = flat(fleet(3, 1))
    state = ServiceState(tmp_path).recover()
    state.log(batches)
    for batch in batches:
        state.ingest(batch)
    state.faults = FaultInjector(FaultPlan(torn_write_rate=1.0), seed=0)
    with pytest.raises(TornWriteError):
        state.publish()
    assert not state.snapshot_path.exists()  # no half-written snapshot
    state.close()

    recovered = ServiceState(tmp_path).recover()
    assert recovered.replayed == len(batches)
    assert serial_json(recovered.aggregator.batches()) == \
        serial_json(batches)
    recovered.close()


def test_state_torn_group_append_rolls_back_whole_group(tmp_path):
    """No batch of a torn group commit may be acknowledged."""
    batches = flat(fleet(4, 1))
    state = ServiceState(tmp_path).recover()
    state.log(batches[:2])
    # Tear the append of the *last* batch in the second group.
    plan = FaultPlan(torn_write_rate=1.0)
    probe = FaultInjector(plan, seed=0)
    group = batches[2:]
    # _trip_keyed is keyed per batch: find the seed irrelevant — rate
    # 1.0 tears the first append of the group.
    state.faults = probe
    with pytest.raises(TornWriteError):
        state.log(group)
    state.faults = None
    state.close()
    replayed, torn = BatchJournal(tmp_path / "wal.jsonl").replay()
    assert not torn  # log() repaired before re-raising
    assert [b.batch_id for b in replayed] == \
        [b.batch_id for b in batches[:2]]


# ----------------------------------------------------- service over HTTP


def run(coro):
    return asyncio.run(coro)


async def _started(tmp_path, **kwargs):
    return await IngestService(tmp_path / "state", **kwargs).start()


def test_service_ingest_ack_and_duplicate(tmp_path):
    async def scenario():
        service = await _started(tmp_path)
        client = ServeClient("127.0.0.1", service.port, seed=1)
        batch = flat(fleet(1, 1))[0]
        assert await client.upload(batch) == "ingested"
        assert await client.upload(batch) == "duplicate"
        health = await client.get("/healthz")
        assert health == {"status": "ok"}
        ready = await client.get("/readyz")
        assert ready == {"status": "ready"}
        stats = await client.get("/v1/stats")
        assert stats["ingested"] == 1
        assert stats["duplicates"] == 1
        await service.stop()
        return service

    service = run(scenario())
    assert service.state.snapshot_bytes()  # final publish landed


def test_service_equivalence_shuffled_duplicated_concurrent(tmp_path):
    """Any delivery schedule converges to the batch-path bytes."""
    fleet_batches = fleet(6, 2, seed=23)
    expected = baseline_snapshot_json(fleet_batches)
    batches = flat(fleet_batches)
    shuffled = batches * 2  # every batch delivered twice
    random.Random(5).shuffle(shuffled)
    thirds = [shuffled[i::3] for i in range(3)]

    async def scenario():
        service = await _started(tmp_path, snapshot_every=7)

        async def device(index, work):
            client = ServeClient("127.0.0.1", service.port, seed=index,
                                 key=f"dev{index}")
            for batch in work:
                await client.upload(batch)

        await asyncio.gather(*(
            device(i, work) for i, work in enumerate(thirds)
        ))
        await service.stop()
        return service

    service = run(scenario())
    assert service.state.snapshot_bytes() == expected.encode("utf-8")


def test_service_kill_restart_replays_acked_batches(tmp_path):
    """SIGKILL loses nothing acked; the restart replays the WAL and
    re-uploads ack as duplicates."""
    fleet_batches = fleet(5, 2, seed=31)
    expected = baseline_snapshot_json(fleet_batches)
    batches = flat(fleet_batches)
    half = len(batches) // 2

    async def before_kill():
        # snapshot_every larger than the fleet: everything acked before
        # the kill lives only in the WAL.
        service = await _started(tmp_path, snapshot_every=10_000)
        client = ServeClient("127.0.0.1", service.port, seed=2)
        for batch in batches[:half]:
            await client.upload(batch)
        await service.abort()  # SIGKILL stand-in: no drain, no publish
        return service

    async def after_restart():
        service = await _started(tmp_path, snapshot_every=10_000)
        client = ServeClient("127.0.0.1", service.port, seed=3)
        # Re-upload a few acked-before-the-kill batches (an ambiguous
        # client would): they must come back as duplicates.
        for batch in batches[:3]:
            assert await client.upload(batch) == "duplicate"
        for batch in batches[half:]:
            await client.upload(batch)
        await service.stop()
        return service

    killed = run(before_kill())
    assert not killed.state.snapshot_bytes()  # nothing published yet
    service = run(after_restart())
    assert service.stats["replayed"] == half
    assert service.state.snapshot_bytes() == expected.encode("utf-8")


def test_service_queue_full_sheds_429_with_retry_after(tmp_path):
    async def scenario():
        service = await _started(tmp_path, max_queue=2,
                                 retry_after_s=0.75)
        # Fill the queue directly so the gate is deterministic.
        loop = asyncio.get_running_loop()
        for _ in range(2):
            service._queue.put_nowait((None, loop.create_future()))
        body = json.dumps(batch_to_dict(flat(fleet(1, 1))[0]))
        status, payload, headers = await service._route(
            _Request("POST", "/v1/batches", {}, body)
        )
        assert status == 429
        assert headers["Retry-After"] == "0.75"
        assert service.stats["shed_queue"] == 1
        # Tell the writer to skip the placeholders before stop drains.
        while not service._queue.empty():
            service._queue.get_nowait()
            service._queue.task_done()
        await service.stop()

    run(scenario())


def test_service_tenant_bucket_sheds_429(tmp_path):
    async def scenario():
        clock = [0.0]
        service = await _started(tmp_path, tenant_rate=1.0,
                                 tenant_burst=2,
                                 clock=lambda: clock[0])
        batches = flat(fleet(4, 1, seed=7))[:4]
        client = ServeClient("127.0.0.1", service.port, seed=1,
                             tenant="fleet-a", max_attempts=1,
                             sleep_scale=0.0)
        delivered = 0
        shed = 0
        for batch in batches:
            try:
                await client.upload(batch)
                delivered += 1
            except DeliveryError:
                shed += 1
        assert delivered == 2  # the burst
        assert shed == len(batches) - 2
        assert service.stats["shed_tenant"] == shed
        # Refill: one token per simulated second.
        clock[0] = 10.0
        retry = ServeClient("127.0.0.1", service.port, seed=2,
                            tenant="fleet-a", sleep_scale=0.0)
        assert await retry.upload(batches[2]) == "ingested"
        assert retry.stats.shed_429 == 0
        await service.stop()

    run(scenario())


def test_service_draining_refuses_with_503(tmp_path):
    async def scenario():
        service = await _started(tmp_path)
        service._draining = True
        status, payload, _ = await service._route(
            _Request("GET", "/readyz", {}, "")
        )
        assert (status, payload) == (503, {"status": "draining"})
        body = json.dumps(batch_to_dict(flat(fleet(1, 1))[0]))
        status, _, headers = await service._route(
            _Request("POST", "/v1/batches", {}, body)
        )
        assert status == 503
        assert "Retry-After" in headers
        service._draining = False
        await service.stop()

    run(scenario())


def test_service_rejects_malformed_batch_with_400(tmp_path):
    async def scenario():
        service = await _started(tmp_path)
        status, payload, _ = await service._route(
            _Request("POST", "/v1/batches", {}, '{"nope": 1}')
        )
        assert status == 400
        assert "missing required key" in payload["error"]
        status, _, _ = await service._route(
            _Request("GET", "/nowhere", {}, "")
        )
        assert status == 404
        await service.stop()

    run(scenario())


def test_service_metrics_exposition_agrees_with_stats(tmp_path):
    """``/metrics`` and ``/v1/stats`` are views over one registry: on
    a drained server every stats counter matches its exposition
    sample, and per-request latency histograms appear with the full
    cumulative ``_bucket``/``_sum``/``_count`` shape."""
    async def scenario():
        service = await _started(tmp_path)
        client = ServeClient("127.0.0.1", service.port, seed=1)
        batch = flat(fleet(2, 1))[0]
        assert await client.upload(batch) == "ingested"
        assert await client.upload(batch) == "duplicate"
        stats = await client.get("/v1/stats")
        head, body = await client.get_raw("/metrics")
        await service.stop()
        return stats, head, body

    stats, head, body = run(scenario())
    assert "Content-Type: text/plain; version=0.0.4" in head
    samples = {}
    for line in body.splitlines():
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = value
    # Every /v1/stats counter has an identical exposition sample.
    for key in ("ingested", "duplicates", "replayed", "shed_queue",
                "publishes", "write_failures"):
        assert samples[f"serve_{key}"] == str(stats[key]), key
    assert samples["serve_queue_depth"] == str(stats["queue_depth"])
    # The upload route's latency histogram, labeled by route and
    # status class, with the cumulative bucket tail.
    labels = '{route="/v1/batches",status="2xx"}'
    count = int(samples[f"serve_http_latency_ms_count{labels}"])
    assert count == 2  # the two uploads
    inf = f'serve_http_latency_ms_bucket{{route="/v1/batches",' \
          f'status="2xx",le="+Inf"}}'
    assert int(samples[inf]) == count
    assert f"serve_http_latency_ms_sum{labels}" in samples
    # /v1/stats itself was observed too (route label, status 2xx).
    stats_labels = '{route="/v1/stats",status="2xx"}'
    assert f"serve_http_latency_ms_count{stats_labels}" in samples


def test_service_stats_snapshot_is_consistent(tmp_path):
    """Queue depth in ``/v1/stats`` comes from the same snapshot as
    the counters (no live ``qsize()`` re-read), and the JSON key
    order is the pinned wire order."""
    from repro.serve.service import STATS_KEYS

    async def scenario():
        service = await _started(tmp_path, max_queue=8)
        loop = asyncio.get_running_loop()
        for _ in range(3):
            service._queue.put_nowait((None, loop.create_future()))
        status, payload, _ = await service._route(
            _Request("GET", "/v1/stats", {}, "")
        )
        assert status == 200
        assert payload["queue_depth"] == 3
        assert list(payload) == list(STATS_KEYS) + [
            "queue_depth", "batches"
        ]
        # The stats property is a registry view with the same keys.
        assert list(service.stats) == list(STATS_KEYS)
        while not service._queue.empty():
            service._queue.get_nowait()
            service._queue.task_done()
        await service.stop()

    run(scenario())


def test_service_never_acks_torn_group_then_recovers(tmp_path):
    """A torn WAL append 500s the whole group; unacked batches retry
    and the final snapshot still matches the batch path."""
    fleet_batches = fleet(3, 1, seed=41)
    expected = baseline_snapshot_json(fleet_batches)
    batches = flat(fleet_batches)
    # Tear the first append attempt of one specific batch, then heal.
    victim = batches[1].batch_id

    class OneShotTear:
        def __init__(self):
            self.torn = []

        def torn_write_fault(self, label):
            if label == f"wal:{victim}" and not self.torn:
                self.torn.append(label)
                return True
            return False

    async def scenario():
        service = await IngestService(
            tmp_path / "state", faults=OneShotTear()
        ).start()
        client = ServeClient("127.0.0.1", service.port, seed=5,
                             sleep_scale=0.0)
        for batch in batches:
            await client.upload(batch)
        assert client.stats.server_errors >= 1  # the torn group's 500s
        assert service.stats["write_failures"] >= 1
        await service.stop()
        return service

    service = run(scenario())
    assert service.state.snapshot_bytes() == expected.encode("utf-8")


# ------------------------------------------------------------- client


def _free_port():
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_client_gives_up_with_delivery_error_and_opens_breaker():
    port = _free_port()  # nothing listening: every connect refused

    async def scenario():
        client = ServeClient("127.0.0.1", port, seed=1, max_attempts=8,
                             breaker_threshold=3, sleep_scale=0.0)
        with pytest.raises(DeliveryError):
            await client.upload(flat(fleet(1, 1))[0])
        assert client.stats.attempts == 8
        assert client.stats.connection_errors == 8
        assert client.stats.breaker_opens == 1
        assert client.stats.failed == 1

    run(scenario())


def test_client_delivers_through_network_faults(tmp_path):
    """Seeded drops, resets, delays, and corrupt responses: every
    batch still lands exactly once, and the snapshot matches."""
    fleet_batches = fleet(4, 2, seed=53)
    expected = baseline_snapshot_json(fleet_batches)
    plan = FaultPlan(
        request_drop_rate=0.3, request_delay_rate=0.3,
        connection_reset_rate=0.2, response_corrupt_rate=0.2,
        request_delay_ms=1.0,
    )

    async def scenario():
        service = await _started(tmp_path)
        total_injected = 0
        for index, (_, batches) in enumerate(fleet_batches):
            faults = FaultInjector(plan, seed=9, scope=("serve-net",))
            client = ServeClient("127.0.0.1", service.port, seed=index,
                                 key=f"dev{index}", faults=faults,
                                 max_attempts=40, sleep_scale=0.0)
            for batch in batches:
                await client.upload(batch)
            total_injected += (client.stats.injected_drops
                               + client.stats.injected_resets
                               + client.stats.corrupt_responses)
        assert total_injected > 0  # the storm actually happened
        await service.stop()
        return service

    service = run(scenario())
    assert service.state.snapshot_bytes() == expected.encode("utf-8")


def test_client_backoff_schedule_is_deterministic():
    recorded = [[], []]

    async def scenario(slot):
        client = ServeClient("127.0.0.1", _free_port(), seed=4,
                             key="dev0", max_attempts=6,
                             sleep=lambda s: _note(slot, s))
        with pytest.raises(DeliveryError):
            await client.upload(flat(fleet(1, 1))[0])

    async def _note(slot, seconds):
        recorded[slot].append(seconds)

    run(scenario(0))
    run(scenario(1))
    assert recorded[0] == recorded[1]
    assert len(recorded[0]) == 5  # max_attempts - 1 sleeps


# ------------------------------------------------------------ loadgen


def test_synthetic_fleet_is_deterministic_and_per_device_stable():
    a = synthetic_fleet_batches(3, 6, 2)
    b = synthetic_fleet_batches(3, 6, 2)
    assert serial_json(flat(a)) == serial_json(flat(b))
    # Device 2's batches do not depend on the fleet size around it.
    small = dict(synthetic_fleet_batches(3, 3, 2))[2]
    large = dict(synthetic_fleet_batches(3, 8, 2))[2]
    assert [batch_to_dict(x) for x in small] == \
        [batch_to_dict(x) for x in large]


def test_percentile_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.50) == 20.0
    assert percentile(values, 0.99) == 40.0
    assert percentile([], 0.5) == 0.0


def test_run_bench_rate0_byte_identity(tmp_path):
    report = run_bench(tmp_path / "state", devices=8, rounds=1, seed=13,
                       concurrency=4, snapshot_every=5)
    assert report.snapshot_matches is True
    assert report.stats.failed == 0
    assert report.stats.delivered == report.batches_total
    rendered = report.render()
    assert "snapshot == batch baseline : yes" in rendered
    assert "p99" in rendered


def test_run_bench_under_faults_and_saturation(tmp_path):
    report = run_bench(tmp_path / "state", devices=10, rounds=1, seed=17,
                       concurrency=8, max_queue=2, fault_rate=0.2,
                       request_delay_ms=1.0, sleep_scale=0.0)
    assert report.snapshot_matches is True
    assert report.stats.failed == 0
    assert report.stats.retries > 0
