"""Tests for repro.sim.counters (the 46-event model)."""

import numpy as np
import pytest

from repro.base.kinds import ApiKind
from repro.base.rng import stream
from repro.sim.counters import (
    ALL_EVENTS,
    CounterModel,
    FILTER_EVENTS,
    KERNEL_EVENTS,
    PMU_EVENTS,
)
from repro.sim.device import LG_V10
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD

NEUTRAL_UARCH = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
                 "mem": 1.0}


def counts_for(kind=ApiKind.BLOCKING, thread=MAIN_THREAD, wall=300.0,
               cpu=180.0, pages=900, key="x"):
    model = CounterModel(LG_V10)
    rng = stream("counter-test", key)
    return model.segment_counts(
        kind=kind, thread=thread, wall_ms=wall, cpu_ms=cpu, pages=pages,
        uarch=NEUTRAL_UARCH, rng=rng,
    )


def test_event_universe_has_46_events():
    assert len(ALL_EVENTS) == 46
    assert len(set(ALL_EVENTS)) == 46


def test_kernel_and_pmu_partition():
    assert set(KERNEL_EVENTS).isdisjoint(PMU_EVENTS)
    assert set(KERNEL_EVENTS) | set(PMU_EVENTS) == set(ALL_EVENTS)


def test_filter_events_are_kernel_events():
    assert set(FILTER_EVENTS) <= set(KERNEL_EVENTS)


def test_all_events_present_in_counts():
    counts = counts_for()
    assert set(counts) == set(ALL_EVENTS)


def test_counts_non_negative():
    counts = counts_for()
    assert all(value >= 0.0 for value in counts.values())


def test_task_clock_is_nanoseconds_of_cpu():
    counts = counts_for(cpu=180.0)
    assert counts["task-clock"] == pytest.approx(180.0 * 1e6, rel=0.15)


def test_cpu_clock_tracks_task_clock():
    counts = counts_for()
    assert counts["cpu-clock"] == pytest.approx(counts["task-clock"],
                                                rel=0.1)


def test_minor_major_sum_to_page_faults():
    counts = counts_for()
    assert counts["minor-faults"] + counts["major-faults"] == (
        counts["page-faults"]
    )


def test_zero_cpu_zero_cycles():
    counts = counts_for(cpu=0.0, pages=0)
    assert counts["cpu-cycles"] == 0.0
    assert counts["instructions"] == 0.0
    assert counts["task-clock"] == 0.0


def test_cpu_clamped_to_wall():
    counts = counts_for(wall=100.0, cpu=500.0)
    assert counts["task-clock"] <= 100.0 * 1e6 * 1.3


def test_instructions_scale_with_ipc_multiplier():
    fast = dict(NEUTRAL_UARCH, ipc=3.0)
    model = CounterModel(LG_V10)
    base = model.segment_counts(
        kind=ApiKind.COMPUTE, thread=MAIN_THREAD, wall_ms=200, cpu_ms=200,
        pages=10, uarch=NEUTRAL_UARCH, rng=stream("c", 1),
    )
    boosted = model.segment_counts(
        kind=ApiKind.COMPUTE, thread=MAIN_THREAD, wall_ms=200, cpu_ms=200,
        pages=10, uarch=fast, rng=stream("c", 1),
    )
    assert boosted["instructions"] > 2.0 * base["instructions"]


def test_cache_misses_scale_with_cache_multiplier():
    leaky = dict(NEUTRAL_UARCH, cache=4.0)
    model = CounterModel(LG_V10)
    base = model.segment_counts(
        kind=ApiKind.COMPUTE, thread=MAIN_THREAD, wall_ms=200, cpu_ms=200,
        pages=10, uarch=NEUTRAL_UARCH, rng=stream("c", 2),
    )
    worse = model.segment_counts(
        kind=ApiKind.COMPUTE, thread=MAIN_THREAD, wall_ms=200, cpu_ms=200,
        pages=10, uarch=leaky, rng=stream("c", 2),
    )
    assert worse["cache-misses"] > 2.0 * base["cache-misses"]


def test_blocking_main_thread_switches_exceed_starved_render():
    """The paper's core contrast: a blocked main thread switches a lot;
    a starved render thread barely runs."""
    main = counts_for(kind=ApiKind.BLOCKING, thread=MAIN_THREAD,
                      wall=400, cpu=220, key="m")
    render = counts_for(kind=ApiKind.UI, thread=RENDER_THREAD,
                        wall=400, cpu=8, pages=5, key="r")
    assert main["context-switches"] > 4 * max(render["context-switches"], 1)


def test_busy_render_thread_switches_a_lot():
    render = counts_for(kind=ApiKind.UI, thread=RENDER_THREAD,
                        wall=400, cpu=240, pages=200, key="r2")
    assert render["context-switches"] > 30


def test_wait_chunk_override_reduces_switches():
    model = CounterModel(LG_V10)
    normal = model.segment_counts(
        kind=ApiKind.BLOCKING, thread=MAIN_THREAD, wall_ms=400, cpu_ms=80,
        pages=100, uarch=NEUTRAL_UARCH, rng=stream("c", 3),
    )
    chunky = model.segment_counts(
        kind=ApiKind.BLOCKING, thread=MAIN_THREAD, wall_ms=400, cpu_ms=80,
        pages=100, uarch=NEUTRAL_UARCH, rng=stream("c", 3),
        wait_chunk_override=250.0,
    )
    assert chunky["context-switches"] < normal["context-switches"] / 3


def test_cycles_noisier_than_task_clock():
    """DVFS decorrelates cycle counts from CPU time."""
    ratios = []
    for index in range(100):
        counts = counts_for(key=f"dvfs-{index}")
        ratios.append(counts["cpu-cycles"] / counts["task-clock"])
    assert np.std(np.log(ratios)) > 0.2
