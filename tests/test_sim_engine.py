"""Tests for repro.sim.engine (action execution)."""

import pytest

from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog_helpers import action, op
from repro.base.rng import stream
from repro.core.response_monitor import ResponseTimeMonitor
from repro.sim.engine import ExecutionEngine, PERCEIVABLE_DELAY_MS
from repro.sim.looper import Looper
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD, WORKER_THREAD

from tests.helpers import run_until


def test_response_time_is_max_over_events(engine, k9):
    execution = engine.run_action(k9, k9.action("open_email"))
    assert execution.response_time_ms == pytest.approx(
        max(e.response_time_ms for e in execution.events)
    )


def test_events_execute_in_order(engine, k9):
    execution = engine.run_action(k9, k9.action("open_email"))
    finishes = [e.finish_ms for e in execution.events]
    dispatches = [e.dispatch_ms for e in execution.events]
    assert dispatches == sorted(dispatches)
    assert all(d >= f for d, f in zip(dispatches[1:], finishes[:-1]))


def test_action_end_after_last_event(engine, k9):
    execution = engine.run_action(k9, k9.action("open_email"))
    assert execution.end_ms > execution.events[-1].finish_ms


def test_main_thread_segments_cover_operations(engine, k9):
    execution = engine.run_action(k9, k9.action("folders"))
    segments = execution.timeline.segments(MAIN_THREAD)
    op_segments = [s for s in segments if s.op is not None]
    assert len(op_segments) == len(k9.action("folders").operations())


def test_ui_operations_feed_render_thread(engine, k9):
    execution = engine.run_action(k9, k9.action("folders"))
    assert execution.timeline.cpu_ms(RENDER_THREAD) > 0.0


def test_bug_hang_detected_in_ground_truth(engine, k9):
    execution = run_until(
        engine, k9, "open_email",
        lambda ex: ex.bug_caused_hang(),
    )
    sites = execution.hang_bug_sites()
    assert any("HtmlCleaner.clean" in site for site in sites)


def test_ui_hang_is_not_bug_caused(engine, k9):
    execution = run_until(
        engine, k9, "folders", lambda ex: ex.has_soft_hang
    )
    assert not execution.bug_caused_hang()
    assert execution.hang_bug_sites() == []


def test_repeated_executions_vary(engine, k9):
    first = engine.run_action(k9, k9.action("folders"))
    second = engine.run_action(k9, k9.action("folders"))
    assert first.response_time_ms != second.response_time_ms


def test_same_seed_same_results(device, k9):
    rts_a = [
        ExecutionEngine(device, seed=5).run_action(
            k9, k9.action("folders")
        ).response_time_ms
    ]
    rts_b = [
        ExecutionEngine(device, seed=5).run_action(
            k9, k9.action("folders")
        ).response_time_ms
    ]
    assert rts_a == rts_b


def test_worker_offload_removes_main_thread_time(device, camera_app):
    resume = camera_app.action("resume")
    fixed = camera_app.fixed()
    buggy_rt = ExecutionEngine(device, seed=9).run_action(
        camera_app, resume
    ).response_time_ms
    fixed_rt = ExecutionEngine(device, seed=9).run_action(
        fixed, fixed.action("resume")
    ).response_time_ms
    assert fixed_rt < buggy_rt / 2


def test_worker_offload_runs_on_worker_thread(device, camera_app):
    fixed = camera_app.fixed()
    execution = ExecutionEngine(device, seed=9).run_action(
        fixed, fixed.action("resume")
    )
    worker_segments = execution.timeline.segments(WORKER_THREAD)
    assert worker_segments
    assert any(
        s.op is not None and s.op.api.name == "open" for s in worker_segments
    )


def test_run_session_advances_clock(engine, k9):
    executions = engine.run_session(k9, ["folders", "inbox"], gap_ms=500.0)
    assert executions[1].start_ms >= executions[0].end_ms + 500.0


def test_custom_looper_sees_dispatch_events(device, k9):
    engine = ExecutionEngine(device, seed=3)
    looper = Looper()
    monitor = ResponseTimeMonitor().attach(looper)
    execution = engine.run_action(k9, k9.action("open_email"), looper=looper)
    assert len(monitor.timings) == len(execution.events)
    for timing, event in zip(monitor.timings, execution.events):
        assert timing.response_time_ms == pytest.approx(
            event.response_time_ms
        )


def test_counter_difference_matches_timeline(engine, k9):
    execution = engine.run_action(k9, k9.action("folders"))
    direct = execution.timeline.difference(
        "context-switches", MAIN_THREAD, RENDER_THREAD,
        execution.start_ms, execution.end_ms,
    )
    assert execution.counter_difference(
        "context-switches", execution.start_ms, execution.end_ms
    ) == pytest.approx(direct)


def test_ambient_activity_exists_after_action_end(engine, k9):
    execution = engine.run_action(k9, k9.action("folders"))
    assert execution.timeline.end_ms > execution.end_ms + 100.0


def test_ambient_not_in_action_counter_window(engine, k9):
    """S-Checker's window [start, end] excludes ambient segments."""
    execution = engine.run_action(k9, k9.action("folders"))
    within = execution.timeline.total(
        MAIN_THREAD, "task-clock", execution.start_ms, execution.end_ms
    )
    total = execution.timeline.total(MAIN_THREAD, "task-clock")
    assert total > within


def test_dominant_op_is_longest_main_op(engine, k9):
    execution = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    hang = [e for e in execution.events if e.is_soft_hang][0]
    dominant = hang.dominant_op()
    assert dominant.duration_ms == max(
        oe.duration_ms for oe in hang.op_executions
        if oe.thread == MAIN_THREAD
    )


def test_light_action_has_no_soft_hang(device):
    quick = action(
        "quick", "onClick",
        op(apis.LOG_D, "logTap", "Main.java"),
        op(apis.PUT_EXTRA, "fillIntent", "Main.java"),
    )
    app = AppSpec(name="Tiny", package="t.app", category="Tools",
                  downloads=1, commit="abc", actions=(quick,))
    engine = ExecutionEngine(device, seed=4)
    for _ in range(10):
        execution = engine.run_action(app, quick)
        assert not execution.has_soft_hang


def test_perceivable_delay_constant_is_100ms():
    assert PERCEIVABLE_DELAY_MS == 100.0


def test_queued_burst_fifo_order(engine, k9):
    records, _ = engine.run_queued_burst(
        k9, ["folders", "inbox", "compose"]
    )
    targets = [r.message.target.split("/")[0] for r in records]
    assert targets == sorted(targets, key=["folders", "inbox",
                                           "compose"].index)


def test_queued_burst_latency_accumulates(engine, k9):
    """A hang at the head of the queue delays every event behind it —
    the paper's core mechanism (§2.1)."""
    records, _ = engine.run_queued_burst(
        k9, ["open_email", "folders", "inbox"]
    )
    last = records[-1]
    earlier_work = sum(r.response_time_ms for r in records[:-1])
    assert last.latency_ms == pytest.approx(
        earlier_work + last.response_time_ms, rel=0.01
    )
    assert last.latency_ms > last.response_time_ms


def test_queued_burst_timeline_is_contiguous(engine, k9):
    records, timeline = engine.run_queued_burst(k9, ["folders", "inbox"])
    assert timeline.end_ms >= records[-1].finish_ms
