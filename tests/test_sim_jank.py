"""Tests for repro.sim.jank (frame production / dropped frames)."""

import pytest

from repro.sim.jank import (
    FrameStats,
    execution_frame_stats,
    frame_stats,
    hang_frame_stats,
)
from repro.sim.timeline import Timeline
from tests.helpers import run_until


def test_frame_stats_dataclass():
    stats = FrameStats(expected=10.0, produced=4.0)
    assert stats.dropped == 6.0
    assert stats.jank_ratio == pytest.approx(0.6)


def test_no_overproduction():
    stats = FrameStats(expected=5.0, produced=9.0)
    assert stats.dropped == 0.0
    assert stats.jank_ratio == 0.0


def test_empty_window():
    stats = FrameStats(expected=0.0, produced=0.0)
    assert stats.jank_ratio == 0.0


def test_rejects_reversed_window(device):
    with pytest.raises(ValueError):
        frame_stats(Timeline(), device, 100.0, 50.0)


def test_idle_timeline_is_fully_janky(device):
    stats = frame_stats(Timeline(), device, 0.0, 1000.0)
    assert stats.produced == 0.0
    assert stats.jank_ratio == 1.0


def test_bug_hang_freezes_frames(engine, device, k9):
    execution = run_until(
        engine, k9, "open_email",
        lambda ex: ex.bug_caused_hang() and ex.response_time_ms > 800,
    )
    stats = hang_frame_stats(execution, device)
    assert stats.jank_ratio > 0.8


def test_ui_hang_keeps_producing_frames(engine, device, k9):
    execution = run_until(
        engine, k9, "folders", lambda ex: ex.has_soft_hang
    )
    stats = hang_frame_stats(execution, device)
    assert stats.jank_ratio < 0.8


def test_jank_separates_bug_from_ui(engine, device, k9):
    """Dropped-frame ratio during hangs is itself a bug/UI separator —
    consistent with the counter filter's causal story."""
    bug = run_until(
        engine, k9, "open_email", lambda ex: ex.bug_caused_hang()
    )
    ui = run_until(engine, k9, "folders", lambda ex: ex.has_soft_hang)
    assert hang_frame_stats(bug, device).jank_ratio > (
        hang_frame_stats(ui, device).jank_ratio + 0.2
    )


def test_no_hang_no_hang_frames(engine, device, k9):
    execution = run_until(
        engine, k9, "open_email", lambda ex: not ex.has_soft_hang
    )
    stats = hang_frame_stats(execution, device)
    assert stats.expected == 0.0


def test_execution_stats_cover_whole_action(engine, device, k9):
    execution = engine.run_action(k9, k9.action("folders"))
    stats = execution_frame_stats(execution, device)
    span = execution.end_ms - execution.start_ms
    assert stats.expected == pytest.approx(span / device.vsync_period_ms)
