"""Tests for repro.sim.looper (message queue + logging hooks)."""

import pytest

from repro.sim.looper import (
    DISPATCH_PREFIX,
    DispatchRecord,
    FINISH_PREFIX,
    Looper,
    Message,
)


def msg(target="ev", enqueue=0.0):
    return Message(target=target, payload=None, enqueue_ms=enqueue)


def test_fifo_order():
    looper = Looper()
    looper.post(msg("first"))
    looper.post(msg("second"))
    seen = []

    def handler(message, dispatch_ms):
        seen.append(message.target)
        return dispatch_ms + 10.0

    looper.dispatch_all(handler, 0.0)
    assert seen == ["first", "second"]


def test_dispatch_next_empty_queue_returns_none():
    assert Looper().dispatch_next(lambda m, t: t, 0.0) is None


def test_pending_counts():
    looper = Looper()
    assert looper.pending() == 0
    looper.post(msg())
    assert looper.pending() == 1


def test_response_time_is_dispatch_to_finish():
    record = DispatchRecord(message=msg(enqueue=0.0), dispatch_ms=5.0,
                            finish_ms=45.0)
    assert record.response_time_ms == 40.0


def test_latency_includes_queue_wait():
    record = DispatchRecord(message=msg(enqueue=0.0), dispatch_ms=5.0,
                            finish_ms=45.0)
    assert record.latency_ms == 45.0


def test_dispatch_waits_for_enqueue_time():
    looper = Looper()
    looper.post(msg(enqueue=100.0))
    record = looper.dispatch_next(lambda m, t: t + 1.0, 0.0)
    assert record.dispatch_ms == 100.0


def test_handler_cannot_finish_before_dispatch():
    looper = Looper()
    looper.post(msg())
    with pytest.raises(ValueError):
        looper.dispatch_next(lambda m, t: t - 1.0, 10.0)


def test_logging_lines_and_timestamps():
    looper = Looper()
    looper.post(msg("click"))
    lines = []
    looper.set_message_logging(lambda line, t: lines.append((line, t)))
    looper.dispatch_all(lambda m, t: t + 25.0, 0.0)
    assert lines == [
        (f"{DISPATCH_PREFIX}click", 0.0),
        (f"{FINISH_PREFIX}click", 25.0),
    ]


def test_multiple_printers_all_called():
    looper = Looper()
    looper.post(msg())
    first, second = [], []
    looper.set_message_logging(lambda line, t: first.append(line))
    looper.set_message_logging(lambda line, t: second.append(line))
    looper.dispatch_all(lambda m, t: t + 1.0, 0.0)
    assert len(first) == 2
    assert len(second) == 2


def test_none_clears_printers():
    looper = Looper()
    looper.post(msg())
    lines = []
    looper.set_message_logging(lambda line, t: lines.append(line))
    looper.set_message_logging(None)
    looper.dispatch_all(lambda m, t: t + 1.0, 0.0)
    assert lines == []


def test_dispatch_all_chains_clock():
    looper = Looper()
    looper.post(msg("a"))
    looper.post(msg("b"))
    records = looper.dispatch_all(lambda m, t: t + 30.0, 0.0)
    assert records[1].dispatch_ms == records[0].finish_ms
