"""Tests for repro.sim.memory (page-fault model)."""

import numpy as np

from repro.base.kinds import ApiKind
from repro.base.rng import stream
from repro.sim.memory import FaultCounts, segment_faults


def test_zero_pages_zero_faults():
    rng = stream("mem-test", 0)
    counts = segment_faults(ApiKind.BLOCKING, 0, rng)
    assert counts.total == 0


def test_negative_pages_zero_faults():
    rng = stream("mem-test", 1)
    assert segment_faults(ApiKind.UI, -5, rng).total == 0


def test_total_is_minor_plus_major():
    counts = FaultCounts(minor=7, major=3)
    assert counts.total == 10


def test_mean_faults_tracks_pages():
    rng = stream("mem-test", 2)
    totals = [segment_faults(ApiKind.BLOCKING, 1000, rng).total
              for _ in range(200)]
    assert 900 < np.mean(totals) < 1100


def test_blocking_has_more_major_faults_than_compute():
    rng_blocking = stream("mem-test", "blocking")
    rng_compute = stream("mem-test", "compute")
    blocking_major = sum(
        segment_faults(ApiKind.BLOCKING, 1000, rng_blocking).major
        for _ in range(200)
    )
    compute_major = sum(
        segment_faults(ApiKind.COMPUTE, 1000, rng_compute).major
        for _ in range(200)
    )
    assert blocking_major > 3 * max(compute_major, 1)


def test_light_has_no_major_faults():
    rng = stream("mem-test", "light")
    for _ in range(100):
        assert segment_faults(ApiKind.LIGHT, 100, rng).major == 0


def test_major_fraction_is_bursty():
    """Major-fault shares vary wildly between segments (overdispersed)."""
    rng = stream("mem-test", "bursty")
    shares = []
    for _ in range(300):
        counts = segment_faults(ApiKind.BLOCKING, 2000, rng)
        if counts.total:
            shares.append(counts.major / counts.total)
    shares = np.array(shares)
    # A plain binomial at p=0.03 over 2000 trials would have tiny
    # spread; burstiness makes the standard deviation comparable to
    # the mean.
    assert np.std(shares) > 0.5 * np.mean(shares)
