"""Tests for repro.sim.pmu (register multiplexing)."""

import pytest

from repro.sim.counters import ALL_EVENTS, KERNEL_EVENTS, PMU_EVENTS
from repro.sim.device import LG_V10
from repro.sim.pmu import PmuSampler
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD, Segment, Timeline


def make_timeline(value=1000.0):
    timeline = Timeline()
    counts = {event: value for event in ALL_EVENTS}
    timeline.add(Segment(thread=MAIN_THREAD, start_ms=0, end_ms=100,
                         counts=counts))
    timeline.add(Segment(thread=RENDER_THREAD, start_ms=0, end_ms=100,
                         counts={event: 400.0 for event in ALL_EVENTS}))
    return timeline


def test_unknown_event_rejected_at_construction():
    with pytest.raises(ValueError):
        PmuSampler(LG_V10, ("not-an-event",))


def test_reading_uncounted_event_rejected():
    sampler = PmuSampler(LG_V10, ("task-clock",))
    with pytest.raises(KeyError):
        sampler.read(make_timeline(), MAIN_THREAD, "instructions")


def test_no_multiplexing_within_register_budget():
    events = ("cpu-cycles", "instructions")
    sampler = PmuSampler(LG_V10, events)
    assert sampler.multiplex_factor == 1.0
    value = sampler.read(make_timeline(), MAIN_THREAD, "cpu-cycles")
    assert value == pytest.approx(1000.0)


def test_kernel_events_always_exact():
    sampler = PmuSampler(LG_V10, ALL_EVENTS)
    assert sampler.multiplex_factor > 1.0
    for event in KERNEL_EVENTS:
        assert sampler.read(make_timeline(), MAIN_THREAD, event) == (
            pytest.approx(1000.0)
        )


def test_pmu_events_noisy_under_multiplexing():
    sampler = PmuSampler(LG_V10, ALL_EVENTS, seed=3)
    readings = [
        sampler.read(make_timeline(), MAIN_THREAD, "instructions")
        for _ in range(20)
    ]
    assert len(set(readings)) > 1
    for value in readings:
        assert value == pytest.approx(1000.0, rel=0.8)


def test_multiplex_factor_value():
    sampler = PmuSampler(LG_V10, ALL_EVENTS)
    assert sampler.multiplex_factor == pytest.approx(
        len(PMU_EVENTS) / LG_V10.pmu_registers
    )


def test_filter_events_all_exact():
    from repro.sim.counters import FILTER_EVENTS

    sampler = PmuSampler(LG_V10, FILTER_EVENTS)
    for event in FILTER_EVENTS:
        assert sampler.read(make_timeline(), MAIN_THREAD, event) == (
            pytest.approx(1000.0)
        )


def test_read_difference():
    sampler = PmuSampler(LG_V10, ("task-clock",))
    diff = sampler.read_difference(
        make_timeline(), "task-clock", MAIN_THREAD, RENDER_THREAD
    )
    assert diff == pytest.approx(600.0)


def test_zero_true_value_stays_zero():
    sampler = PmuSampler(LG_V10, ALL_EVENTS)
    empty = Timeline()
    assert sampler.read(empty, MAIN_THREAD, "instructions") == 0.0
