"""Tests for repro.sim.scheduler (context-switch model)."""

import numpy as np
import pytest

from repro.base.kinds import ApiKind
from repro.base.rng import stream
from repro.sim.device import LG_V10
from repro.sim.scheduler import (
    SwitchCounts,
    cpu_migrations,
    segment_switches,
    wait_chunk_ms,
)
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD


def mean_switches(kind, thread, wall, cpu, n=200, chunk=None):
    rng = stream("sched-test", kind.value, thread, wall, cpu)
    totals = [
        segment_switches(kind, thread, wall, cpu, LG_V10, rng,
                         chunk_override=chunk)
        for _ in range(n)
    ]
    return (
        float(np.mean([s.voluntary for s in totals])),
        float(np.mean([s.involuntary for s in totals])),
    )


def test_wait_chunk_ui_is_vsync():
    assert wait_chunk_ms(ApiKind.UI, MAIN_THREAD, LG_V10) == (
        LG_V10.vsync_period_ms
    )


def test_wait_chunk_blocking_is_io_chunk():
    assert wait_chunk_ms(ApiKind.BLOCKING, MAIN_THREAD, LG_V10) == (
        LG_V10.io_wait_chunk_ms
    )


def test_wait_chunk_override_wins_for_blocking():
    assert wait_chunk_ms(
        ApiKind.BLOCKING, MAIN_THREAD, LG_V10, override=200.0
    ) == 200.0


def test_wait_chunk_override_ignored_for_ui():
    assert wait_chunk_ms(ApiKind.UI, MAIN_THREAD, LG_V10, override=200.0) == (
        LG_V10.vsync_period_ms
    )


def test_involuntary_scales_with_cpu_time():
    _, light = mean_switches(ApiKind.COMPUTE, MAIN_THREAD, 100.0, 100.0)
    _, heavy = mean_switches(ApiKind.COMPUTE, MAIN_THREAD, 400.0, 400.0)
    assert heavy > 2.5 * light


def test_voluntary_scales_with_blocked_time():
    few, _ = mean_switches(ApiKind.BLOCKING, MAIN_THREAD, 200.0, 150.0)
    many, _ = mean_switches(ApiKind.BLOCKING, MAIN_THREAD, 200.0, 50.0)
    assert many > 2.0 * few


def test_long_wait_chunk_means_few_voluntary():
    chunky, _ = mean_switches(
        ApiKind.BLOCKING, MAIN_THREAD, 300.0, 60.0, chunk=200.0
    )
    fine, _ = mean_switches(ApiKind.BLOCKING, MAIN_THREAD, 300.0, 60.0)
    assert chunky < fine / 5.0


def test_render_voluntary_scales_with_render_cpu_not_wall():
    idle, _ = mean_switches(ApiKind.UI, RENDER_THREAD, 500.0, 5.0)
    busy, _ = mean_switches(ApiKind.UI, RENDER_THREAD, 500.0, 200.0)
    assert busy > 10.0 * max(idle, 0.1)


def test_pure_compute_has_no_voluntary():
    voluntary, _ = mean_switches(ApiKind.COMPUTE, MAIN_THREAD, 300.0, 300.0)
    assert voluntary == 0.0


def test_cpu_ms_clamped_to_wall():
    rng = stream("sched-test", "clamp")
    counts = segment_switches(
        ApiKind.COMPUTE, MAIN_THREAD, 100.0, 500.0, LG_V10, rng
    )
    # cpu clamps to wall: involuntary reflects 100 ms, not 500 ms.
    assert counts.involuntary < 30


def test_switch_counts_total():
    assert SwitchCounts(voluntary=3, involuntary=4).total == 7


def test_migrations_zero_without_switches():
    rng = stream("sched-test", "mig")
    assert cpu_migrations(SwitchCounts(0, 0), LG_V10, rng) == 0


def test_migrations_bounded_by_switches():
    rng = stream("sched-test", "mig2")
    for _ in range(50):
        migrations = cpu_migrations(SwitchCounts(10, 10), LG_V10, rng)
        assert 0 <= migrations <= 20
