"""Tests for repro.sim.stacktrace (the periodic sampler)."""

import pytest

from repro.base.frames import Frame
from repro.sim.stacktrace import StackTraceSampler
from repro.sim.timeline import MAIN_THREAD, Segment, Timeline


def timeline_with_op(start=0.0, end=200.0, method="clean"):
    frame = Frame("a.B", method, "B.java", 1)
    timeline = Timeline()
    timeline.add(Segment(thread=MAIN_THREAD, start_ms=start, end_ms=end,
                         frames=(frame,)))
    return timeline, frame


def test_rejects_nonpositive_period():
    with pytest.raises(ValueError):
        StackTraceSampler(period_ms=0)


def test_rejects_reversed_window():
    sampler = StackTraceSampler()
    timeline, _ = timeline_with_op()
    with pytest.raises(ValueError):
        sampler.sample(timeline, MAIN_THREAD, 100.0, 50.0)


def test_sample_count_matches_period():
    sampler = StackTraceSampler(period_ms=20.0)
    timeline, _ = timeline_with_op()
    traces = sampler.sample(timeline, MAIN_THREAD, 0.0, 200.0)
    assert len(traces) == 10


def test_samples_carry_active_frames():
    sampler = StackTraceSampler(period_ms=50.0)
    timeline, frame = timeline_with_op(end=100.0)
    traces = sampler.sample(timeline, MAIN_THREAD, 0.0, 100.0)
    assert all(trace.frames == (frame,) for trace in traces)


def test_idle_samples_are_empty():
    sampler = StackTraceSampler(period_ms=50.0)
    timeline, _ = timeline_with_op(start=0.0, end=100.0)
    traces = sampler.sample(timeline, MAIN_THREAD, 100.0, 300.0)
    assert all(trace.frames == () for trace in traces)


def test_timestamps_increase_by_period():
    sampler = StackTraceSampler(period_ms=25.0)
    timeline, _ = timeline_with_op()
    traces = sampler.sample(timeline, MAIN_THREAD, 10.0, 110.0)
    times = [trace.time_ms for trace in traces]
    assert times == [10.0, 35.0, 60.0, 85.0]


def test_empty_window_yields_no_traces():
    sampler = StackTraceSampler()
    timeline, _ = timeline_with_op()
    assert sampler.sample(timeline, MAIN_THREAD, 50.0, 50.0) == []


def test_paper_density_62_traces_for_1300ms_hang():
    """The paper's Figure 6(b): ~62 traces over a 1.3 s hang."""
    sampler = StackTraceSampler(period_ms=20.0)
    timeline, _ = timeline_with_op(end=1300.0)
    traces = sampler.sample(timeline, MAIN_THREAD, 0.0, 1300.0)
    assert len(traces) == 65
