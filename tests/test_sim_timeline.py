"""Tests for repro.sim.timeline (segments and counter queries)."""

import pytest

from repro.base.frames import Frame
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD, Segment, Timeline


def seg(thread=MAIN_THREAD, start=0.0, end=100.0, counts=None, frames=(),
        cpu=0.0):
    return Segment(
        thread=thread, start_ms=start, end_ms=end,
        counts=counts or {}, frames=frames, cpu_ms=cpu,
    )


def test_segment_rejects_negative_duration():
    with pytest.raises(ValueError):
        seg(start=10.0, end=5.0)


def test_duration():
    assert seg(start=5.0, end=25.0).duration_ms == 20.0


def test_overlap_fraction_full():
    assert seg(start=0, end=100).overlap_fraction(0, 100) == 1.0


def test_overlap_fraction_partial():
    assert seg(start=0, end=100).overlap_fraction(25, 75) == pytest.approx(0.5)


def test_overlap_fraction_disjoint():
    assert seg(start=0, end=100).overlap_fraction(200, 300) == 0.0


def test_count_in_prorates():
    segment = seg(counts={"page-faults": 40.0})
    assert segment.count_in("page-faults", 0, 50) == pytest.approx(20.0)


def test_total_full_window_is_exact():
    timeline = Timeline()
    timeline.add(seg(start=0, end=100, counts={"x": 3.0}))
    timeline.add(seg(start=100, end=200, counts={"x": 5.0}))
    assert timeline.total(MAIN_THREAD, "x") == pytest.approx(8.0)


def test_total_window_prorates_across_segments():
    timeline = Timeline()
    timeline.add(seg(start=0, end=100, counts={"x": 10.0}))
    timeline.add(seg(start=100, end=200, counts={"x": 10.0}))
    assert timeline.total(MAIN_THREAD, "x", 50, 150) == pytest.approx(10.0)


def test_total_unknown_thread_is_zero():
    assert Timeline().total("nonexistent", "x") == 0.0


def test_difference():
    timeline = Timeline()
    timeline.add(seg(thread=MAIN_THREAD, counts={"x": 10.0}))
    timeline.add(seg(thread=RENDER_THREAD, counts={"x": 4.0}))
    assert timeline.difference("x", MAIN_THREAD, RENDER_THREAD) == 6.0


def test_out_of_order_add_rejected():
    timeline = Timeline()
    timeline.add(seg(start=100, end=200))
    with pytest.raises(ValueError):
        timeline.add(seg(start=50, end=80))


def test_threads_listing():
    timeline = Timeline()
    timeline.add(seg(thread=RENDER_THREAD))
    timeline.add(seg(thread=MAIN_THREAD))
    assert timeline.threads() == [MAIN_THREAD, RENDER_THREAD]


def test_start_end_bounds():
    timeline = Timeline()
    timeline.add(seg(thread=MAIN_THREAD, start=10, end=50))
    timeline.add(seg(thread=RENDER_THREAD, start=5, end=80))
    assert timeline.start_ms == 5
    assert timeline.end_ms == 80


def test_empty_timeline_bounds():
    timeline = Timeline()
    assert timeline.start_ms == 0.0
    assert timeline.end_ms == 0.0


def test_stack_at_active_segment():
    frame = Frame("a.B", "m", "B.java", 1)
    timeline = Timeline()
    timeline.add(seg(start=0, end=100, frames=(frame,)))
    assert timeline.stack_at(MAIN_THREAD, 50.0) == (frame,)


def test_stack_at_idle_gap():
    timeline = Timeline()
    timeline.add(seg(start=0, end=100))
    assert timeline.stack_at(MAIN_THREAD, 150.0) == ()


def test_stack_at_boundary_is_half_open():
    frame = Frame("a.B", "m", "B.java", 1)
    timeline = Timeline()
    timeline.add(seg(start=0, end=100, frames=(frame,)))
    assert timeline.stack_at(MAIN_THREAD, 100.0) == ()
    assert timeline.stack_at(MAIN_THREAD, 0.0) == (frame,)


def test_stack_at_prefers_latest_started_overlapping_segment():
    outer = Frame("a.B", "outer", "B.java", 1)
    inner = Frame("a.B", "inner", "B.java", 2)
    timeline = Timeline()
    timeline.add(seg(start=0, end=200, frames=(outer,)))
    timeline.add(seg(start=50, end=100, frames=(inner,)))
    assert timeline.stack_at(MAIN_THREAD, 75.0) == (inner,)
    assert timeline.stack_at(MAIN_THREAD, 150.0) == (outer,)


def test_segment_at():
    timeline = Timeline()
    segment = timeline.add(seg(start=0, end=100))
    assert timeline.segment_at(MAIN_THREAD, 10.0) is segment
    assert timeline.segment_at(MAIN_THREAD, 150.0) is None


def test_cpu_ms_total_and_window():
    timeline = Timeline()
    timeline.add(seg(start=0, end=100, cpu=60.0))
    assert timeline.cpu_ms(MAIN_THREAD) == pytest.approx(60.0)
    assert timeline.cpu_ms(MAIN_THREAD, 0, 50) == pytest.approx(30.0)


def test_merge_keeps_order():
    first = Timeline()
    first.add(seg(start=0, end=10))
    second = Timeline()
    second.add(seg(start=20, end=30, counts={"x": 1.0}))
    first.merge(second)
    assert first.total(MAIN_THREAD, "x") == 1.0


def test_zero_duration_segment_counts():
    timeline = Timeline()
    timeline.add(seg(start=10, end=10, counts={"x": 5.0}))
    assert timeline.total(MAIN_THREAD, "x") == 5.0
