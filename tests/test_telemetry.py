"""The telemetry subsystem and its determinism guarantees.

The contract under test, straight from the observability docs: with no
session active every instrumented call is a zero-allocation no-op and
every output is byte-identical to an uninstrumented run; with a
session active the three deterministic exports (``trace.jsonl``,
``trace.json``, ``metrics.txt``) are byte-identical across repeat
runs, ``--workers`` counts, and kill-and-resume — only the advisory
channel may differ.
"""

import json

import pytest

from repro.core.hang_doctor import HangDoctor
from repro.checkpoint import ShardJournal, checkpointed_map, run_key
from repro.detectors.runner import run_detector
from repro.harness.exp_chaos import chaos_sweep
from repro.parallel import ExecutionReport, parallel_map
from repro.sim.engine import ExecutionEngine
from repro.telemetry import (
    EXPORT_FILENAMES,
    MetricsRegistry,
    NOOP,
    Session,
    ShardTelemetry,
    active,
    collect_shard,
    current,
    export_chrome_trace,
    export_jsonl,
    export_metrics_text,
    render_trace_summary,
    session,
    span_self_times,
    top_spans_by_self_time,
    write_exports,
)


def _traced_square(x):
    """Module-level shard function (picklable) that records telemetry."""
    tel = current()
    with tel.track(f"sq/{x}"):
        tel.count("sq.calls")
        tel.record_span("sq.compute", float(x), float(x) + 1.0, x=x)
    return x * x


def _square(x):
    return x * x


def _dies_late(x):
    """Fail shards past the second — an interrupt mid-sweep."""
    if x >= 2:
        raise RuntimeError(f"interrupted at {x}")
    return _traced_square(x)


def _exports(active_session):
    """The deterministic-channel export bytes, as one tuple."""
    return (
        export_jsonl(active_session),
        export_chrome_trace(active_session),
        export_metrics_text(active_session),
    )


# ------------------------------------------------------------- no-op


def test_current_is_shared_noop_when_inactive():
    assert not active()
    assert current() is NOOP
    assert current().enabled is False


def test_noop_context_managers_are_cached_singletons():
    tel = current()
    assert tel.span("a", k=1) is tel.span("b")
    assert tel.track("x") is tel.track("y")
    with tel.track("t"):
        with tel.span("s"):
            tel.count("c")
            tel.event("e", time_ms=1.0)
            tel.record_span("r", 0.0, 1.0)
            tel.gauge_set("g", 1)
            tel.observe("h", 5.0)
            tel.advisory_event("a")


def test_noop_never_swallows_exceptions():
    with pytest.raises(ValueError, match="through"):
        with current().span("s"):
            raise ValueError("through")


# ----------------------------------------------------------- session


def test_session_activates_and_restores():
    with session() as outer:
        assert active()
        assert current() is outer
        with session() as inner:
            assert current() is inner
        assert current() is outer
    assert not active()


def test_record_span_uses_sim_clock_and_current_track():
    with session() as tel:
        with tel.track("fleet/K9-mail"):
            tel.record_span("sim.action.execute", 10.0, 25.5, hang=True)
    (record,) = tel.records
    assert record.kind == "span"
    assert record.track == "fleet/K9-mail"
    assert (record.start, record.end) == (10.0, 25.5)
    assert record.attrs == {"hang": True}


def test_tick_spans_nest_and_never_read_wall_time():
    with session() as tel:
        with tel.span("outer"):
            with tel.span("inner"):
                pass
    inner, outer = tel.records
    assert inner.name == "inner" and inner.depth == 1
    assert outer.name == "outer" and outer.depth == 0
    assert outer.start < inner.start < inner.end < outer.end
    assert outer.end == 4.0  # four boundaries, one tick each


def test_events_default_to_tick_clock():
    with session() as tel:
        tel.event("at", time_ms=12.5)
        tel.event("ticked")
    timed, ticked = tel.records
    assert timed.start == timed.end == 12.5
    assert ticked.start == ticked.end == 1.0


def test_seq_is_per_track():
    with session() as tel:
        tel.event("a")
        with tel.track("other"):
            tel.event("b")
        tel.event("c")
    seqs = {(r.track, r.name): r.seq for r in tel.records}
    assert seqs == {("main", "a"): 0, ("other", "b"): 0, ("main", "c"): 1}


# ----------------------------------------------------------- metrics


def test_metrics_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.count("a.b")
    reg.count("a.b", 4)
    reg.gauge_set("g", 1)
    reg.observe("h", 3.0, buckets=(1, 5))
    reg.observe("h", 100.0, buckets=(1, 5))
    assert reg.counter_value("a.b") == 5
    assert reg.counter_value("missing") == 0
    assert reg.gauge_value("g") == 1
    assert reg.gauge_value("unset", default=7.0) == 7.0
    assert reg.histogram_summary("h") == (2, 103.0)
    assert reg.histogram_summary("missing") == (0, 0.0)
    assert "h count=2 sum=103 le1=0 le5=1 inf=1" in reg.render_lines()


def test_metrics_merge_is_commutative_and_associative():
    def build(counts):
        reg = MetricsRegistry()
        for name, n in counts:
            reg.count(name, n)
            reg.observe("h", n)
            reg.gauge_set("flag", n % 2)
        return reg

    a = build([("x", 1), ("y", 2)])
    b = build([("x", 10)])
    c = build([("z", 5)])
    ab_c = build([])
    ab_c.merge_state(a.state())
    ab_c.merge_state(b.state())
    ab_c.merge_state(c.state())
    c_ba = build([])
    c_ba.merge_state(c.state())
    c_ba.merge_state(b.state())
    c_ba.merge_state(a.state())
    assert ab_c.render_lines() == c_ba.render_lines()
    assert ab_c.counter_value("x") == 11
    assert ab_c.gauge_value("flag") == 1  # max, not last-write


def test_metrics_merge_rejects_bucket_mismatch():
    a = MetricsRegistry()
    a.observe("h", 1.0, buckets=(1, 2))
    b = MetricsRegistry()
    b.observe("h", 1.0, buckets=(1, 5))
    with pytest.raises(ValueError, match="bucket"):
        a.merge_state(b.state())


def test_metrics_render_is_sorted_and_stable():
    reg = MetricsRegistry()
    reg.count("z.last")
    reg.count("a.first", 2)
    lines = reg.render_lines()
    assert lines.index("a.first 2") < lines.index("z.last 1")
    assert reg.render_lines() == lines


# ------------------------------------------------------------ shards


def test_collect_shard_returns_carrier_and_restores_state():
    assert not active()
    carrier = collect_shard(_traced_square, 3)
    assert not active()
    assert isinstance(carrier, ShardTelemetry)
    assert carrier.value == 9
    assert [r.track for r in carrier.records] == ["sq/3"]


def test_absorb_renumbers_per_track_and_fills_base_track():
    with session() as tel:
        tel.event("before")  # main seq 0
        shard = ShardTelemetry(value=None)
        sub = Session(base_track="")
        sub.event("on-base")
        sub.event("on-base")
        shard.records = sub.records
        tel.absorb(shard, default_track="main")
    assert [(r.track, r.seq) for r in tel.records] == [
        ("main", 0), ("main", 1), ("main", 2),
    ]


def test_absorb_order_does_not_change_export():
    carriers = [collect_shard(_traced_square, x) for x in (1, 2, 3)]
    with session() as forward:
        for carrier in carriers:
            forward.absorb(carrier)
    with session() as backward:
        for carrier in reversed(carriers):
            backward.absorb(carrier)
    assert _exports(forward) == _exports(backward)


# ----------------------------------------------- executor integration


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_map_telemetry_identical_across_workers(workers):
    with session() as tel:
        assert parallel_map(_traced_square, [1, 2, 3], workers=workers) \
            == [1, 4, 9]
        exports = _exports(tel)
    with session() as serial:
        for x in (1, 2, 3):
            _traced_square(x)
    assert exports == _exports(serial)


def test_parallel_map_without_session_returns_plain_values():
    assert parallel_map(_traced_square, [2], workers=2) == [4]


def test_executor_advisory_events_mirror_the_report():
    closure = lambda x: x + 1  # noqa: E731 - deliberately unpicklable
    with session() as tel:
        report = ExecutionReport()
        parallel_map(closure, [1, 2], workers=2, report=report)
    names = [name for name, _ in tel.advisory]
    assert "executor.serial-fallback" in names
    assert report.serial_fallbacks == 1


# --------------------------------------------- checkpoint integration


def test_journal_key_isolates_telemetry_runs(tmp_path):
    """A journal written without telemetry must not feed a telemetry
    run (its entries carry no spans) — and vice versa."""
    items, keys = [0, 1], ["a", "b"]
    plain = ShardJournal(tmp_path, run_key("m", 0)).open()
    checkpointed_map(_traced_square, items, keys, plain)
    with session():
        observed = ShardJournal(tmp_path, run_key("m", 0)).open(resume=True)
        assert observed.completed(keys) == []


def test_interrupted_map_resumes_with_identical_exports(tmp_path):
    items, keys = [0, 1, 2, 3], ["a", "b", "c", "d"]
    with session() as reference:
        checkpointed_map(_traced_square, items, keys, None, workers=2)
        expected = _exports(reference)
    with session():
        journal = ShardJournal(tmp_path, run_key("m", 1)).open()
        with pytest.raises(RuntimeError, match="interrupted"):
            checkpointed_map(_dies_late, items, keys, journal, workers=1)
    with session() as resumed_session:
        journal = ShardJournal(tmp_path, run_key("m", 1)).open(resume=True)
        report = ExecutionReport()
        result = checkpointed_map(_traced_square, items, keys, journal,
                                  workers=2, report=report)
        assert result == [x * x for x in items]
        assert report.checkpoint_hits == 2  # shards 0/1 came from disk
        assert _exports(resumed_session) == expected


# ----------------------------------------------- sweep-level identity


@pytest.fixture(scope="module")
def chaos_kwargs():
    return dict(seed=0, rates=(0.0, 0.2), apps=("K9-mail",), users=1,
                actions_per_user=10)


@pytest.fixture(scope="module")
def chaos_observed(device, chaos_kwargs):
    with session() as tel:
        result = chaos_sweep(device, workers=1, **chaos_kwargs)
    return result.render(), _exports(tel)


def test_chaos_disabled_telemetry_is_byte_identical(
    device, chaos_kwargs, chaos_observed
):
    plain = chaos_sweep(device, workers=1, **chaos_kwargs)
    assert plain.render() == chaos_observed[0]


@pytest.mark.parametrize("workers", [2, 4])
def test_chaos_exports_byte_identical_across_workers(
    device, chaos_kwargs, chaos_observed, workers
):
    with session() as tel:
        result = chaos_sweep(device, workers=workers, **chaos_kwargs)
    assert result.render() == chaos_observed[0]
    assert _exports(tel) == chaos_observed[1]


def test_chaos_exports_byte_identical_across_resume(
    device, chaos_kwargs, chaos_observed, tmp_path
):
    """Journal half the sweep, then resume under a fresh session: the
    restored carriers replay the journaled shards' telemetry and the
    exports match an uninterrupted run's bytes."""
    with session():
        chaos_sweep(device, workers=2, checkpoint=tmp_path, **chaos_kwargs)
        journal = ShardJournal(
            tmp_path,
            run_key("chaos", device.name, 0, chaos_kwargs["rates"],
                    chaos_kwargs["apps"], 1, 10),
        ).open(resume=True)
        keys = [f"{rate!r}|K9-mail" for rate in chaos_kwargs["rates"]]
        assert journal.completed(keys) == keys
        journal._entry_path(keys[1]).unlink()  # lose one shard
    with session() as tel:
        resumed = chaos_sweep(device, workers=2, checkpoint=tmp_path,
                              resume=True, **chaos_kwargs)
    assert resumed.render() == chaos_observed[0]
    assert _exports(tel) == chaos_observed[1]
    assert resumed.execution.checkpoint_hits == 1


# ----------------------------------------------------- single sources


def test_hang_doctor_fields_are_metric_views(device, k9):
    """Satellite: degraded / phase2_collections / kb_short_circuits
    are views over the doctor's always-on registry, not shadow state."""
    engine = ExecutionEngine(device, seed=11)
    doctor = HangDoctor(k9, device, seed=11)
    names = [action.name for action in k9.actions] * 6
    run_detector(doctor, engine.run_session(k9, names, gap_ms=1000.0))
    reg = doctor.metrics
    assert doctor.phase2_collections \
        == reg.counter_value("core.phase2.collections")
    assert doctor.kb_short_circuits \
        == reg.counter_value("core.kb.short_circuits")
    assert doctor.degraded == (reg.gauge_value("core.degraded.mode") > 0)
    assert doctor.phase2_collections > 0
    assert reg.counter_value("core.actions.processed") == len(names)


def test_execution_report_to_dict_round_trips():
    report = ExecutionReport(shards=3, worker_crashes=1,
                             events=["worker-crash: pool broke"])
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["shards"] == 3
    assert payload["worker_crashes"] == 1
    assert payload["degraded"] is True
    assert payload["events"] == ["worker-crash: pool broke"]


# ---------------------------------------------------------- exporters


def test_chrome_trace_is_valid_and_loadable():
    with session() as tel:
        with tel.track("t1"):
            tel.record_span("a.b", 1.0, 2.5)
            tel.event("a.mark", time_ms=2.0)
    data = json.loads(export_chrome_trace(tel))
    events = data["traceEvents"]
    assert {e["ph"] for e in events} == {"M", "X", "i"}
    (span,) = [e for e in events if e["ph"] == "X"]
    assert (span["ts"], span["dur"]) == (1000, 1500)
    (instant,) = [e for e in events if e["ph"] == "i"]
    assert instant["s"] == "t"
    names = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in names} == {"repro", "t1"}


def test_write_exports_creates_all_files(tmp_path):
    with session() as tel:
        tel.count("c")
        tel.advisory_event("executor.retry", shard=1)
    report = ExecutionReport(shards=1)
    paths = write_exports(tel, tmp_path / "out", report=report)
    written = sorted(p.name for p in paths)
    assert written == sorted(EXPORT_FILENAMES + ("execution.json",))
    advisory = (tmp_path / "out" / "executor.jsonl").read_text()
    assert json.loads(advisory)["name"] == "executor.retry"
    assert json.loads(
        (tmp_path / "out" / "execution.json").read_text()
    )["shards"] == 1


def test_top_spans_by_self_time_subtracts_children():
    with session() as tel:
        tel.record_span("parent", 0.0, 10.0)
        tel._depth = 1
        tel.record_span("child", 2.0, 5.0)
        tel._depth = 0
    rows = top_spans_by_self_time(tel)
    by_name = {row["name"]: row["total_self"] for row in rows}
    assert by_name == {"parent": 7.0, "child": 3.0}
    summary = render_trace_summary(tel)
    assert "parent" in summary and "top 10 spans" in summary


def test_render_trace_summary_handles_empty_session():
    with session() as tel:
        pass
    assert "(no spans recorded)" in render_trace_summary(tel)


def test_span_self_times_zero_duration_spans():
    """Zero-duration spans attribute zero self time and subtract
    nothing from their parents."""
    with session() as tel:
        tel.record_span("outer", 0.0, 10.0)
        tel._depth = 1
        tel.record_span("instant", 5.0, 5.0)
        tel._depth = 0
        tel.record_span("point", 3.0, 3.0)
    self_times = {r.name: s for r, s in span_self_times(tel)}
    assert self_times["instant"] == 0.0
    assert self_times["point"] == 0.0
    assert self_times["outer"] == 10.0
    rows = top_spans_by_self_time(tel)
    by_name = {row["name"]: row for row in rows}
    assert by_name["instant"]["mean_self"] == 0.0
    assert by_name["outer"]["total_self"] == 10.0


def test_span_unclosed_at_collect_time_is_dropped():
    """A span still open when the shard session is collected emits no
    record — the carrier holds only completed spans, and the self-time
    views stay consistent."""
    def shard(x):
        tel = current()
        tel.span("left.open").__enter__()  # never exited
        tel.record_span("closed", 0.0, 4.0)
        return x

    carrier = collect_shard(shard, 5)
    assert carrier.value == 5
    assert [r.name for r in carrier.records] == ["closed"]
    with session() as tel:
        tel.absorb(carrier, default_track="t")
    rows = top_spans_by_self_time(tel)
    assert [row["name"] for row in rows] == ["closed"]
    assert rows[0]["total_self"] == 4.0


def test_span_self_times_skips_event_only_tracks():
    """Tracks holding only instant events yield no self-time rows but
    render cleanly."""
    with session() as tel:
        with tel.track("events-only"):
            tel.event("e.one", 1.0)
            tel.event("e.two", 2.0)
    assert list(span_self_times(tel)) == []
    assert top_spans_by_self_time(tel) == []
    assert "(no spans recorded)" in render_trace_summary(tel)
