"""Tests for repro.testbed (the §4.6 in-lab alternative)."""

import pytest

from repro.apps.catalog import get_app
from repro.sim.engine import ExecutionEngine
from repro.testbed import MonkeyInputGenerator, TestBedRunner, lab_vs_wild


def test_monkey_sequences_are_uniformish(k9):
    monkey = MonkeyInputGenerator(seed=0)
    sequence = monkey.action_sequence(k9, 500)
    counts = {name: sequence.count(name) for name in set(sequence)}
    assert len(counts) == len(k9.actions)
    assert max(counts.values()) < 2 * min(counts.values())


def test_monkey_deterministic(k9):
    first = MonkeyInputGenerator(seed=3).action_sequence(k9, 50)
    second = MonkeyInputGenerator(seed=3).action_sequence(k9, 50)
    assert first == second


def test_monkey_coverage(k9):
    monkey = MonkeyInputGenerator(seed=0)
    assert monkey.coverage(k9, 200) == 1.0
    assert monkey.coverage(k9, 1) == pytest.approx(1 / len(k9.actions))


def test_monkey_throttle_validation():
    with pytest.raises(ValueError):
        MonkeyInputGenerator(throttle_ms=-1.0)


def test_lab_engine_scales_manifestation(device, k9):
    """K9's clean never manifests on synthetic lab inputs
    (lab_manifest_scale = 0)."""
    engine = ExecutionEngine(device, seed=2, environment="lab")
    action = k9.action("open_email")
    for _ in range(30):
        execution = engine.run_action(k9, action)
        assert not execution.bug_caused_hang()


def test_wild_engine_unchanged(device, k9):
    engine = ExecutionEngine(device, seed=2, environment="wild")
    action = k9.action("open_email")
    manifested = sum(
        engine.run_action(k9, action).bug_caused_hang() for _ in range(30)
    )
    assert manifested > 5


def test_engine_rejects_unknown_environment(device):
    with pytest.raises(ValueError):
        ExecutionEngine(device, environment="staging")


def test_testbed_finds_content_independent_bugs(device):
    sticker = get_app("StickerCamera")
    runner = TestBedRunner(device, seed=4)
    found = runner.run(sticker, event_count=120)
    assert len(found) == 3  # all camera/bitmap/file bugs manifest in lab


def test_testbed_filters_ui_hangs(device, k9):
    runner = TestBedRunner(device, seed=4)
    found = runner.run(k9, event_count=60)
    for site in found:
        op = k9.operation_by_site(site)
        assert op.is_hang_bug


def test_lab_vs_wild_gap(device):
    """The paper's point: the lab misses content-dependent bugs that
    the wild catches (K9's HtmlCleaner hang needs a real heavy email)."""
    apps = [get_app("K9-mail"), get_app("StickerCamera")]
    report = lab_vs_wild(apps, device, seed=4)
    missed = report.missed_in_lab()
    assert any("HtmlCleaner.clean" in site for _, site in missed)
    assert report.wild_found > report.lab_found


def test_lab_report_render(device):
    report = lab_vs_wild([get_app("SkyTube")], device, seed=4,
                         lab_events=60, wild_users=1,
                         wild_actions_per_user=30)
    text = report.render()
    assert "SkyTube" in text
    assert "TOTAL" in text
