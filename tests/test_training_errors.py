"""Error paths of the training-sample machinery."""

import pytest

from repro.analysis.correlation import collect_samples
from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog_helpers import action, op
from repro.harness.training import Case, collect_training_samples
from repro.sim.engine import ExecutionEngine
from repro.sim.pmu import PmuSampler


def test_collect_samples_requires_sampler(engine, k9):
    execution = engine.run_action(k9, k9.action("folders"))
    with pytest.raises(ValueError):
        collect_samples(execution, True)


def test_collect_samples_rejects_unknown_mode(engine, device, k9):
    execution = engine.run_action(k9, k9.action("folders"))
    sampler = PmuSampler(device, ("task-clock",))
    with pytest.raises(ValueError):
        collect_samples(execution, True, mode="render",
                        sampler=sampler, events=("task-clock",))


def test_collect_training_samples_fails_on_never_hanging_case(device):
    quick = action("tap", "onClick", op(apis.LOG_D, "logTap"))
    app = AppSpec(name="Quick", package="q.app", category="Tools",
                  downloads=1, commit="x", actions=(quick,))
    case = Case(app=app, action_name="tap", is_hang_bug=False)
    engine = ExecutionEngine(device, seed=1)
    with pytest.raises(RuntimeError, match="rarely hangs"):
        collect_training_samples(engine, [case], runs_per_case=3)


def test_training_case_requires_bug_in_action(device):
    from repro.harness.training import training_bug_cases

    for case in training_bug_cases():
        op_found = case.app.operation_by_site(case.site_id)
        assert op_found.is_hang_bug


def test_main_mode_samples_differ_from_diff_mode(engine, device, k9):
    from repro.sim.counters import FILTER_EVENTS

    sampler = PmuSampler(device, FILTER_EVENTS)
    execution = engine.run_action(k9, k9.action("folders"))
    diff = collect_samples(execution, False, mode="diff",
                           events=FILTER_EVENTS, sampler=sampler)
    main = collect_samples(execution, False, mode="main",
                           events=FILTER_EVENTS, sampler=sampler)
    # Main-only totals are non-negative; diffs for a UI action are not.
    assert all(value >= 0 for value in main.values.values())
    assert diff.values != main.values
