"""Tests for repro.viz (terminal plots)."""

import pytest

from repro.viz import (
    distribution_panel,
    dual_series_chart,
    hbar_chart,
    series_chart,
    strip_chart,
)


def test_hbar_chart_scales_to_max():
    text = hbar_chart([("a", 2.0), ("b", 1.0)], width=4)
    lines = text.splitlines()
    assert lines[0].count("█") == 4
    assert lines[1].count("█") == 2


def test_hbar_chart_title_and_empty():
    assert hbar_chart([], title="T") == "T"
    assert "T" in hbar_chart([("a", 1.0)], title="T")


def test_hbar_chart_label_alignment():
    text = hbar_chart([("long-label", 1.0), ("x", 1.0)], width=3)
    lines = text.splitlines()
    assert lines[0].index("█") == lines[1].index("█")


def test_strip_chart_places_threshold():
    text = strip_chart([0.0, 10.0], threshold=5.0, width=10)
    assert "|" in text or "┿" in text
    assert text.count("•") >= 1


def test_strip_chart_empty():
    assert "no samples" in strip_chart([], label="x ")


def test_strip_chart_range_annotation():
    text = strip_chart([1.0, 9.0], width=10)
    assert "[1 .. 9]" in text


def test_distribution_panel_structure():
    text = distribution_panel("context-switches", [10, 20], [-5, -10], 0.0)
    lines = text.splitlines()
    assert lines[0].startswith("context-switches")
    assert lines[1].startswith("  HB ")
    assert lines[2].startswith("  UI ")


def test_series_chart_height():
    series = [(i * 0.1, float(i % 5)) for i in range(100)]
    text = series_chart(series, width=20, height=5)
    assert len(text.splitlines()) == 7  # title + 5 rows + axis


def test_series_chart_empty():
    assert "no data" in series_chart([], label="x")


def test_dual_series_chart_contains_both():
    main = [(0.0, 1.0), (0.1, 2.0)]
    render = [(0.0, 0.5), (0.1, 1.5)]
    text = dual_series_chart(main, render)
    assert "main thread" in text
    assert "render thread" in text


def test_charts_on_real_figure5_data(device):
    from repro.harness.exp_filter import figure5

    result = figure5(device, seed=7)
    main = [(t, m) for t, m, _ in result.bug_series]
    render = [(t, r) for t, _, r in result.bug_series]
    text = dual_series_chart(main, render)
    assert "█" in text
