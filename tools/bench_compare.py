#!/usr/bin/env python
"""Compare freshly emitted BENCH_*.json files against committed baselines.

The benchmark suite writes its perf-trajectory measurements to
``benchmarks/results/BENCH_<group>.json`` (see the ``bench_record``
fixture in ``benchmarks/conftest.py``).  This script compares them with
the committed baselines ``benchmarks/BENCH_<group>.json`` and exits
non-zero if any gated entry regressed beyond its tolerance band.

Rules, per entry:

- ``tolerance: null`` entries are informational — printed, never gated
  (absolute wall times vary across machines; the gated entries are
  machine-independent ratios such as columnar-vs-reference speedups).
- Otherwise the relative change in the *worse* direction (sign decided
  by ``higher_is_better``) must stay within ``tolerance``.
- A baseline entry missing from the fresh results is an error: a
  silently skipped benchmark must not read as a pass.
- A fresh entry missing from the baseline is reported as new (run
  ``tools/bench_refresh.py`` to adopt it).

Usage::

    python tools/bench_compare.py [--baseline benchmarks] \
        [--current benchmarks/results]
"""

import argparse
import json
import pathlib
import sys


def load_entries(path):
    payload = json.loads(path.read_text())
    if payload.get("schema") != 1:
        raise SystemExit(f"{path}: unknown BENCH schema {payload.get('schema')!r}")
    return payload["entries"]


def compare_file(baseline_path, current_path):
    """Return (lines, failures) for one BENCH file pair."""
    lines = []
    failures = []
    baseline = load_entries(baseline_path)
    if not current_path.exists():
        failures.append(
            f"{current_path} was not emitted — did the benchmark suite run?"
        )
        return lines, failures
    current = load_entries(current_path)
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{baseline_path.name}: entry {name!r} missing from fresh run")
            continue
        cur = current[name]
        base_value = base["value"]
        cur_value = cur["value"]
        if base["higher_is_better"]:
            worse_by = (base_value - cur_value) / base_value
        else:
            worse_by = (cur_value - base_value) / base_value
        tolerance = base["tolerance"]
        gated = tolerance is not None
        status = "info"
        if gated:
            status = "FAIL" if worse_by > tolerance else "ok"
        lines.append(
            f"  {status:<4} {name:<40} base={base_value:g}{base['unit']} "
            f"now={cur_value:g}{cur['unit']} "
            f"({'-' if worse_by > 0 else '+'}{abs(worse_by) * 100.0:.1f}%"
            f"{f', band {tolerance * 100.0:.0f}%' if gated else ''})"
        )
        if gated and worse_by > tolerance:
            failures.append(
                f"{baseline_path.name}: {name} regressed "
                f"{worse_by * 100.0:.1f}% (> {tolerance * 100.0:.0f}% band): "
                f"{base_value:g} -> {cur_value:g} {cur['unit']}"
            )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"  new  {name:<40} now={current[name]['value']:g}"
                     f"{current[name]['unit']} (not in baseline)")
    return lines, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="benchmarks", type=pathlib.Path,
                        help="directory with committed BENCH_*.json files")
    parser.add_argument("--current", default="benchmarks/results",
                        type=pathlib.Path,
                        help="directory with freshly emitted BENCH_*.json files")
    args = parser.parse_args(argv)

    baseline_files = sorted(args.baseline.glob("BENCH_*.json"))
    if not baseline_files:
        raise SystemExit(f"no BENCH_*.json baselines under {args.baseline}")
    all_failures = []
    for baseline_path in baseline_files:
        current_path = args.current / baseline_path.name
        print(baseline_path.name)
        lines, failures = compare_file(baseline_path, current_path)
        for line in lines:
            print(line)
        all_failures.extend(failures)
    if all_failures:
        print("\nperf trajectory regressions:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf trajectory within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
