#!/usr/bin/env python
"""Refresh the committed BENCH_*.json perf-trajectory baselines.

Runs the trajectory benchmarks with ``REPRO_BENCH_WRITE=1`` so the
``bench_record`` fixture rewrites ``benchmarks/BENCH_<group>.json`` in
place (in addition to the per-run copies under ``benchmarks/results/``).
Run this on an otherwise idle machine after an intentional perf change,
inspect the diff, and commit the updated baselines.

Usage::

    python tools/bench_refresh.py [extra pytest args...]
"""

import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY_TESTS = [
    "benchmarks/test_engine_perf.py",
    "benchmarks/test_fleet_parallel.py",
]


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    env = dict(os.environ)
    env["REPRO_BENCH_WRITE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    command = [
        sys.executable, "-m", "pytest", "-q", "--benchmark-disable",
        *TRAJECTORY_TESTS, *argv,
    ]
    print("+", " ".join(command))
    result = subprocess.run(command, cwd=REPO, env=env)
    if result.returncode:
        return result.returncode
    for path in sorted(REPO.glob("benchmarks/BENCH_*.json")):
        print(f"\n{path.relative_to(REPO)}:")
        print(path.read_text(), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
